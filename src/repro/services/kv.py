"""A sharded key-value service layered on RVMA primitives.

The keyspace is hashed (``core.addressing.stable_hash64``) onto shards;
each shard is one receiver-managed request mailbox on a server node
(paper §IV-B streams), so *many initiators hammer few targets
continuously* — the regime RVMA's receiver-side buffer management is
built for.  Clients append whole request frames to the shard stream
with plain ``RVMA_Put``; servers sweep their shards, decode, execute,
and put *batched* reply frames back to per-client completion mailboxes
(STEERED, one epoch per put, like any other RVMA response channel).

Backpressure is not implemented here because it already exists: when a
shard's bucket runs dry the NIC NACKs ``NO_BUFFER`` and — with the
reliability transport enabled — the sender's transport holds the flow
against ``flow_room`` until the server re-posts chunks.  Run the
cluster with ``RvmaNicConfig(reliability=...)`` to get that hold path
(and ordered whole-message dispatch into the managed stream).

Client ids are self-describing: ``client_id = (node_id << 8) | index``,
so a server can route the reply without any membership registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..core.addressing import stable_hash64
from ..core.api import RvmaApi
from ..core.receiver_managed import StreamClient, StreamServer
from ..core.status import RvmaStatus
from ..network.routing import RoutingMode
from ..nic.active import KvServeHandler
from ..nic.lut import BufferMode, EpochType
from ..sim.process import spawn
from .qos import AdmissionController, ClientRobustnessConfig, DeficitRoundRobin, QosConfig
from .wire import (
    DEFAULT_TENANT,
    OP_DELETE,
    OP_GET,
    OP_NAMES,
    OP_PUT,
    OP_SCAN,
    REQ_HEADER_BYTES,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_OVERLOAD,
    KvReply,
    KvRequest,
    ReplyDecoder,
    RequestDecoder,
    decode_scan_payload,
    encode_request,
    encode_scan_payload,
    status_is_handler_served,
    strip_handler_flag,
)

#: Mailbox bases: shard request streams and per-client reply mailboxes
#: live in disjoint slices of the 48-bit (PID-local) mailbox space.
REQUEST_MAILBOX_BASE = 0x5E4B_0000
REPLY_MAILBOX_BASE = 0x5EC7_0000

#: ``service.kv.request_latency_ns`` binning: 500 ns resolution out to
#: 400 µs; heavier tails land in the overflow bucket (percentile() then
#: reports the upper edge).
LATENCY_HI_NS = 400_000.0
LATENCY_NBINS = 800


def client_id_of(node_id: int, index: int) -> int:
    """Self-describing client id (reply-routable without a registry)."""
    if not 0 <= index < 256:
        raise ValueError("client index must fit in 8 bits")
    return (node_id << 8) | index


def node_of_client(client_id: int) -> int:
    return client_id >> 8


class ShardMap:
    """Hash → shard → (server node, request mailbox) placement.

    Shards round-robin across the server nodes so consecutive shard ids
    spread load; the mapping is pure arithmetic, identical on every
    node, and needs no coordination — exactly the property mailbox
    indirection buys over address-based RDMA placement.
    """

    def __init__(
        self,
        server_nodes: list[int],
        shards_per_node: int = 1,
        request_mailbox_base: int = REQUEST_MAILBOX_BASE,
    ) -> None:
        if not server_nodes:
            raise ValueError("shard map requires at least one server node")
        if shards_per_node < 1:
            raise ValueError("shards_per_node must be >= 1")
        self.server_nodes = list(server_nodes)
        self.shards_per_node = shards_per_node
        self.n_shards = len(server_nodes) * shards_per_node
        self.request_mailbox_base = request_mailbox_base

    def shard_of(self, key: bytes) -> int:
        return stable_hash64(key) % self.n_shards

    def node_of(self, shard: int) -> int:
        return self.server_nodes[shard % len(self.server_nodes)]

    def mailbox_of(self, shard: int) -> int:
        return self.request_mailbox_base + shard

    def locate(self, key: bytes) -> tuple[int, int, int]:
        """(shard, server node, request mailbox) for *key*."""
        shard = self.shard_of(key)
        return shard, self.node_of(shard), self.mailbox_of(shard)

    def shards_on(self, node_id: int) -> list[int]:
        return [s for s in range(self.n_shards) if self.node_of(s) == node_id]


@dataclass
class KvServerConfig:
    """Server-side stream and sweep tuning."""

    #: Managed-stream chunk size per shard (== epoch byte threshold).
    chunk_bytes: int = 4096
    #: Chunks armed per shard bucket (receiver-side credit).
    n_chunks: int = 4
    #: Sweep interval when a shard is idle (partial chunks are flushed
    #: via ``RVMA_Win_inc_epoch`` so small requests never stall).
    poll_interval_ns: float = 2000.0
    #: Max items returned per SCAN.
    scan_limit: int = 64
    #: Modeled host CPU cost per executed request (+ per payload byte).
    #: Zero (the default) keeps execution instantaneous — the historical
    #: behaviour every event-identical test relies on; QoS cells set it
    #: so the service has a finite capacity worth isolating.
    service_ns_per_request: float = 0.0
    service_ns_per_byte: float = 0.0
    reply_mailbox_base: int = REPLY_MAILBOX_BASE
    #: Opt-in active mailboxes (repro.nic.active): keys listed here get
    #: a NIC-side GET short-circuit — the completion unit serves them
    #: from a server-synced read-only view, and the host sweep never
    #: dispatches the served frames.  Empty (the default) leaves every
    #: event exactly as before.
    hot_keys: tuple = ()


class KvServer:
    """One node's shard servers: stream sweeps, stores, batched replies.

    Pass a :class:`~repro.services.qos.QosConfig` (plus the cluster's
    :class:`~repro.services.tenancy.TenantDirectory`) to arm multi-
    tenant QoS: the sweep loop then admits each decoded request through
    the tenant's token bucket (refusals reply ``RC_OVERLOAD``
    immediately) and drains the admitted backlog in deficit-round-robin
    order instead of FIFO.  Without a QoS config the sweep is the
    original FIFO drain, event-for-event.
    """

    def __init__(
        self,
        node,
        shard_map: ShardMap,
        config: Optional[KvServerConfig] = None,
        qos: Optional[QosConfig] = None,
        tenants=None,
    ) -> None:
        self.node = node
        self.api = RvmaApi(node)
        self.map = shard_map
        self.config = config or KvServerConfig()
        self.qos = qos
        self.tenants = tenants
        if qos is not None and tenants is None:
            raise ValueError("QoS needs the TenantDirectory that defines tenant policy")
        self.admission = (
            AdmissionController(node.sim, tenants, qos) if qos is not None else None
        )
        self.shards = shard_map.shards_on(node.node_id)
        #: shard → hot keys served by that shard's active mailbox handler.
        cfg_hot = tuple(self.config.hot_keys)
        self._hot: dict[int, tuple[bytes, ...]] = {
            s: tuple(k for k in cfg_hot if shard_map.shard_of(k) == s)
            for s in self.shards
        }
        #: shard → key/value store (plain dict; durability is out of scope).
        self.stores: dict[int, dict[bytes, bytes]] = {s: {} for s in self.shards}
        self.streams: dict[int, StreamServer] = {}
        self.schedulers: dict[int, DeficitRoundRobin] = {}
        self._stopped = False
        self._procs: list = []
        stats = node.sim.stats
        self._requests = stats.counter("service.kv.requests")
        self._replies = stats.counter("service.kv.replies")
        self._not_found = stats.counter("service.kv.not_found")
        self._bytes_in = stats.counter("service.kv.bytes_in")
        self._bytes_out = stats.counter("service.kv.bytes_out")
        self._flushes = stats.counter("service.kv.flushes")
        self._reply_batch = stats.summary("service.kv.reply_batch")
        self._queue_depth = stats.summary("service.kv.shard_queue_depth")

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "KvServer":
        """Spawn one sweep process per local shard."""
        for shard in self.shards:
            self._procs.append(
                spawn(self.node.sim, self._shard_loop(shard), name=f"kv-shard{shard}")
            )
        return self

    def stop(self) -> None:
        """Stop sweeping at the next idle wakeup (processes drain out)."""
        self._stopped = True

    @property
    def finished(self) -> bool:
        return all(p.finished for p in self._procs)

    # ------------------------------------------------------------------ sweeping

    def _stream_backlog(self, stream: StreamServer) -> int:
        """Bytes sitting in the shard's *active* (unretired) chunk.

        A host-side peek at the NIC's threshold counter — the same word
        ``RVMA_Win_get_epoch`` reads — used to decide whether an early
        flush would surface anything.
        """
        entry = self.api.nic.lut.entries.get(stream.win.virtual_addr)
        if entry is None or entry.active is None:
            return 0
        return int(entry.active.counter)

    def _shard_loop(self, shard: int) -> Generator:
        cfg = self.config
        stream = StreamServer(self.api, self.map.mailbox_of(shard), cfg.chunk_bytes, cfg.n_chunks)
        self.streams[shard] = stream
        yield from stream.open()
        decoder = RequestDecoder()
        store = self.stores[shard]
        hot = self._hot.get(shard)
        if hot:
            # Arm the NIC-side GET short-circuit, then seed its view
            # with whatever the store already holds for the hot keys.
            handler = KvServeHandler(hot_keys=hot, reply_mailbox_base=cfg.reply_mailbox_base)
            yield from self.api.attach_handler(stream.win, handler)
            for key in hot:
                value = store.get(key)
                if value is not None:
                    yield from self.api.kv_sync(stream.win, key, value=value)
        if self.qos is None:
            yield from self._fifo_loop(shard, stream, decoder, store)
        else:
            yield from self._qos_loop(shard, stream, decoder, store)
        yield from stream.close()

    def _fifo_loop(self, shard: int, stream: StreamServer, decoder: RequestDecoder, store: dict) -> Generator:
        cfg = self.config
        while not self._stopped:
            if stream.poll_ready():
                data = yield from stream.recv()
            elif self._stream_backlog(stream) > 0:
                # Small requests must not wait for a full chunk: hand the
                # partial buffer to software now (paper's inc_epoch).
                status = yield from stream.flush()
                if status is not RvmaStatus.SUCCESS:
                    yield cfg.poll_interval_ns
                    continue
                self._flushes.add()
                data = yield from stream.recv()
            else:
                yield cfg.poll_interval_ns
                continue
            if not data:
                continue
            self._bytes_in.add(len(data))
            requests = decoder.feed(data)
            self._queue_depth.add(len(requests))
            if not requests:
                continue
            yield from self._execute_batch(shard, store, requests)

    def _qos_loop(self, shard: int, stream: StreamServer, decoder: RequestDecoder, store: dict) -> Generator:
        """Weighted-fair sweep: admit → per-tenant DRR queues → drain.

        Work-conserving: the loop only sleeps when the stream is idle
        *and* the scheduler is empty.  A sweep drains at most
        ``QosConfig.sweep_budget_bytes`` of admitted requests, so one
        tenant's burst cannot execute ahead of everyone for long —
        whatever remains waits its DRR turn next sweep.
        """
        cfg = self.config
        qos = self.qos
        adm = self.admission
        sched = self.schedulers[shard] = DeficitRoundRobin(qos.quantum_bytes)
        spans = self.node.sim.spans
        while not self._stopped:
            data = b""
            if stream.poll_ready():
                data = yield from stream.recv()
            elif sched.pending_items == 0 and self._stream_backlog(stream) > 0:
                status = yield from stream.flush()
                if status is RvmaStatus.SUCCESS:
                    self._flushes.add()
                    data = yield from stream.recv()
            if data:
                self._bytes_in.add(len(data))
                now = self.node.sim.now
                shed: dict[int, list[bytes]] = {}
                for req in decoder.feed(data):
                    cost = REQ_HEADER_BYTES + len(req.key) + len(req.value)
                    if adm.admit(req.tenant, cost):
                        sched.push(
                            req.tenant, (req, cost, now), cost,
                            weight=self.tenants.spec(req.tenant).weight,
                        )
                    else:
                        # Refused at admission: a cheap RC_OVERLOAD reply
                        # now beats a client timeout later.
                        reply = KvReply(STATUS_OVERLOAD, req.req_id)
                        shed.setdefault(req.client_id, []).append(reply.encode())
                        if req.op in (OP_PUT, OP_DELETE) and req.key in self._hot.get(shard, ()):
                            # The NIC scanner pending-counted this write;
                            # it will never execute, so release the count
                            # (executed=False) or the key wedges dirty.
                            yield from self.api.kv_sync(
                                self.streams[shard].win, req.key, executed=False
                            )
                if shed:
                    yield from self._put_replies(shed)
            if sched.pending_items:
                self._queue_depth.add(sched.pending_items)
                sp = None
                if spans.active and spans.wants("qos"):
                    sp = spans.begin("qos", "drr_drain", shard=shard)
                batch = sched.take(qos.sweep_budget_bytes)
                now = self.node.sim.now
                requests = []
                for req, cost, enq_at in batch:
                    adm.note_sojourn(now - enq_at)
                    adm.note_served(req.tenant, cost)
                    requests.append(req)
                yield from self._execute_batch(shard, store, requests)
                if sp is not None:
                    spans.end(sp, served=len(batch), pending=sched.pending_items)
            elif not data:
                yield cfg.poll_interval_ns

    def _execute_batch(self, shard: int, store: dict, requests: list[KvRequest]) -> Generator:
        spans = self.node.sim.spans
        cfg = self.config
        by_client: dict[int, list[bytes]] = {}
        for req in requests:
            cost = cfg.service_ns_per_request + cfg.service_ns_per_byte * (
                len(req.key) + len(req.value)
            )
            if cost > 0:
                yield cost
            sp = None
            if spans.active and spans.wants("service"):
                sp = spans.begin(
                    "service", f"kv_{OP_NAMES[req.op]}", shard=shard, client=req.client_id
                )
            reply = self._execute(store, req)
            if sp is not None:
                spans.end(sp, status=reply.status)
            self._requests.add()
            if req.op in (OP_PUT, OP_DELETE) and req.key in self._hot.get(shard, ()):
                # Executed a write on a hot key: fold it into the NIC's
                # read-only view and release one pending-write count, so
                # the handler may serve GETs behind it again.
                yield from self.api.kv_sync(
                    self.streams[shard].win,
                    req.key,
                    value=req.value if req.op == OP_PUT else None,
                    delete=req.op == OP_DELETE,
                )
            by_client.setdefault(req.client_id, []).append(reply.encode())
        yield from self._put_replies(by_client)

    def _put_replies(self, by_client: dict[int, list[bytes]]) -> Generator:
        # Batched replies: one put per client per sweep, however many of
        # its requests this sweep decoded.
        for client_id, frames in sorted(by_client.items()):
            batch = b"".join(frames)
            self._reply_batch.add(len(frames))
            self._replies.add(len(frames))
            self._bytes_out.add(len(batch))
            op = yield from self.api.put(
                node_of_client(client_id),
                self.config.reply_mailbox_base + client_id,
                data=batch,
                mode=RoutingMode.STATIC,
            )
            yield op.local_done

    def _execute(self, store: dict, req: KvRequest) -> KvReply:
        if req.op == OP_PUT:
            store[req.key] = req.value
            return KvReply(STATUS_OK, req.req_id)
        if req.op == OP_GET:
            value = store.get(req.key)
            if value is None:
                self._not_found.add()
                return KvReply(STATUS_NOT_FOUND, req.req_id)
            return KvReply(STATUS_OK, req.req_id, value)
        if req.op == OP_DELETE:
            if store.pop(req.key, None) is None:
                self._not_found.add()
                return KvReply(STATUS_NOT_FOUND, req.req_id)
            return KvReply(STATUS_OK, req.req_id)
        # OP_SCAN: key is the prefix; bounded, sorted listing.
        items = [
            (k, v)
            for k, v in sorted(store.items())
            if k.startswith(req.key)
        ][: self.config.scan_limit]
        return KvReply(STATUS_OK, req.req_id, encode_scan_payload(items))


class KvClient:
    """Blocking client endpoint: request streams out, replies in.

    One client = one completion mailbox (STEERED, epoch per put) plus a
    cached :class:`StreamClient` per shard it has touched.  ``get`` /
    ``put`` / ``delete`` / ``scan`` block for their reply;
    :meth:`execute_batch` pipelines several frames in one stream put and
    collects the (server-batched) replies, which is what the load
    generator uses to drive reply batching.
    """

    def __init__(
        self,
        api: RvmaApi,
        shard_map: ShardMap,
        index: int = 0,
        reply_mailbox_base: int = REPLY_MAILBOX_BASE,
        reply_slots: int = 8,
        max_reply_bytes: int = 8192,
        max_put_bytes: int = 4096,
        mode: RoutingMode = RoutingMode.STATIC,
        tenant_id: int = DEFAULT_TENANT,
        robustness: Optional[ClientRobustnessConfig] = None,
    ) -> None:
        self.api = api
        self.map = shard_map
        self.mode = mode
        #: Largest request put (liveness bound): a put bigger than the
        #: shard's bucket can never acquire ``flow_room`` and the
        #: transport would hold it forever, so batches are split to stay
        #: within one server chunk (keep this <= KvServerConfig.chunk_bytes).
        self.max_put_bytes = max_put_bytes
        self.client_id = client_id_of(api.node.node_id, index)
        self.reply_mailbox = reply_mailbox_base + self.client_id
        self.reply_slots = reply_slots
        self.max_reply_bytes = max_reply_bytes
        #: Tenant stamped into every request frame this client issues.
        self.tenant_id = tenant_id
        #: When set, requests carry deadlines and time out → retry with
        #: exponential backoff + jitter instead of blocking forever.
        self.robustness = robustness
        self.reply_win = None
        self._streams: dict[int, StreamClient] = {}
        self._decoder = ReplyDecoder()
        self._replies: dict[int, tuple[KvReply, float]] = {}
        #: req_ids awaiting a reply; frames for requests no longer here
        #: (a retry's original arriving late) are dropped as stale.
        self._outstanding: set[int] = set()
        #: req_id → (shard, frame) kept while robust requests are in
        #: flight, so a timeout can retransmit the identical frame.
        self._frames: dict[int, tuple[int, bytes]] = {}
        self._next_req = 0
        #: Optional TraceRecorder (repro.workloads): when set, every op
        #: this client offers is noted at its batch anchor time.
        self.recorder = None
        stats = api.sim.stats
        self._latency = stats.histogram(
            "service.kv.request_latency_ns", lo=0.0, hi=LATENCY_HI_NS, nbins=LATENCY_NBINS
        )
        self._tenant_latency = (
            stats.histogram(
                f"service.kv.tenant.request_latency_ns.t{tenant_id}",
                lo=0.0, hi=LATENCY_HI_NS, nbins=LATENCY_NBINS,
            )
            if tenant_id != DEFAULT_TENANT
            else None
        )
        self._timeouts = stats.counter("service.kv.client.timeouts")
        self._retries = stats.counter("service.kv.client.retries")
        self._stale = stats.counter("service.kv.client.stale_replies")
        self._handler_served = stats.counter("service.kv.client.handler_served")
        self._tenant_retries = stats.counter(f"service.kv.tenant.retries.t{tenant_id}")
        self._deadline_misses = stats.counter(
            f"service.kv.tenant.deadline_misses.t{tenant_id}"
        )

    def open(self) -> Generator:
        """Create the completion mailbox and arm its reply buffers."""
        self.reply_win = yield from self.api.init_window(
            self.reply_mailbox,
            epoch_threshold=1,
            epoch_type=EpochType.EPOCH_OPS,
            mode=BufferMode.STEERED,
        )
        for _ in range(self.reply_slots):
            yield from self.api.post_buffer(self.reply_win, size=self.max_reply_bytes)
        return self

    def _stream_to(self, shard: int) -> StreamClient:
        stream = self._streams.get(shard)
        if stream is None:
            stream = self._streams[shard] = StreamClient(
                self.api, self.map.node_of(shard), self.map.mailbox_of(shard), self.mode
            )
        return stream

    # ------------------------------------------------------------------ requests

    def execute_batch(
        self,
        ops: list[tuple[int, bytes, bytes]],
        t0: Optional[float] = None,
        deadline_ns: Optional[float] = None,
    ) -> Generator:
        """Issue *ops* (``(op, key, value)`` tuples) as pipelined frames.

        Frames for the same shard travel in one stream put.  Returns the
        replies in issue order.  *t0* overrides the latency-measurement
        start (open-loop generators pass the intended arrival time so
        queueing delay counts).

        With :attr:`robustness` armed, every op also carries a deadline
        of ``t0 + deadline_ns`` (default budget from the config): lost
        or unanswered requests retransmit with exponential backoff +
        jitter, and at the deadline resolve locally as
        ``STATUS_DEADLINE_EXCEEDED`` — no op can stall forever.  The
        deadline anchors at *t0*, so time an op spent queued before
        issue (open-loop backlog) consumes its budget: deadline
        propagation, not per-attempt reset.
        """
        start = self.api.sim.now if t0 is None else t0
        if self.recorder is not None:
            # Record the offered op stream before any outcome is known —
            # deadline-burned backlog ops were still offered load.
            for op, key, value in ops:
                self.recorder.note(
                    start, self.tenant_id, self.client_id, op, key, len(value)
                )
        robust = self.robustness
        deadline = None
        if robust is not None:
            deadline = start + (
                deadline_ns if deadline_ns is not None else robust.default_deadline_ns
            )
            if self.api.sim.now >= deadline:
                # Budget burned before issue (sat too long in a backlog):
                # resolve without wasting wire on frames nobody can wait for.
                out = []
                for op, _key, _value in ops:
                    self._next_req += 1
                    self._deadline_misses.add()
                    out.append(KvReply(STATUS_DEADLINE_EXCEEDED, self._next_req))
                return out
        by_shard: dict[int, list[bytes]] = {}
        req_ids: list[int] = []
        for op, key, value in ops:
            self._next_req += 1
            req_id = self._next_req
            req_ids.append(req_id)
            frame = encode_request(
                op, self.client_id, req_id, key, value, tenant=self.tenant_id
            )
            if len(frame) > self.max_put_bytes:
                raise ValueError(
                    f"request frame of {len(frame)}B exceeds max_put_bytes="
                    f"{self.max_put_bytes} (would hold forever against flow_room)"
                )
            shard = self.map.shard_of(key)
            by_shard.setdefault(shard, []).append(frame)
            self._outstanding.add(req_id)
            if robust is not None:
                self._frames[req_id] = (shard, frame)
        for shard in sorted(by_shard):
            for chunk in self._pack(by_shard[shard]):
                put_op = yield from self._stream_to(shard).send(chunk)
                yield put_op.local_done
        replies = []
        for req_id in req_ids:
            if robust is None:
                reply, seen_at = yield from self._await_reply(req_id)
            else:
                reply, seen_at = yield from self._await_reply_robust(req_id, deadline)
            if reply.status != STATUS_DEADLINE_EXCEEDED:
                self._latency.add(seen_at - start)
                if self._tenant_latency is not None:
                    self._tenant_latency.add(seen_at - start)
            replies.append(reply)
        return replies

    def _pack(self, frames: list[bytes]) -> list[bytes]:
        """Greedily coalesce whole frames into puts of <= max_put_bytes."""
        puts: list[bytes] = []
        cur: list[bytes] = []
        size = 0
        for frame in frames:
            if cur and size + len(frame) > self.max_put_bytes:
                puts.append(b"".join(cur))
                cur, size = [], 0
            cur.append(frame)
            size += len(frame)
        if cur:
            puts.append(b"".join(cur))
        return puts

    def _feed(self, data: bytes) -> None:
        now = self.api.sim.now
        for reply in self._decoder.feed(data):
            if status_is_handler_served(reply.status):
                # Served by a NIC-side active handler: strip the marker
                # so callers see the canonical (host-identical) reply,
                # but count it — QoS/DRR accounting needs to know this
                # request never consumed host sweep budget.
                self._handler_served.add()
                reply = KvReply(strip_handler_flag(reply.status), reply.req_id, reply.payload)
            if reply.req_id in self._outstanding:
                self._replies[reply.req_id] = (reply, now)
            else:
                # A retry already won (or the deadline resolved this op):
                # the late duplicate — handler-served or host-dispatched
                # alike — is counted and dropped, never silently lost.
                self._stale.add()

    def _take_reply(self, req_id: int) -> tuple[KvReply, float]:
        self._outstanding.discard(req_id)
        self._frames.pop(req_id, None)
        return self._replies.pop(req_id)

    def _await_reply(self, req_id: int) -> Generator:
        while req_id not in self._replies:
            info = yield from self.api.wait_completion(self.reply_win)
            data = info.read_data()
            yield from self.api.post_buffer(self.reply_win, buffer=info.record.buffer)
            self._feed(data)
        return self._take_reply(req_id)

    # ------------------------------------------------------------------ robustness

    def _reply_ready(self) -> bool:
        """Non-blocking completion check (StreamServer.poll_ready idiom)."""
        try:
            record = self.reply_win.next_unconsumed()
        except IndexError:
            return False
        return self.api.node.memory.read_u64(record.notification_addr) != 0

    def _drain_ready(self) -> Generator:
        """Consume every visibly completed reply buffer; True if any."""
        progressed = False
        while self._reply_ready():
            info = yield from self.api.wait_completion(self.reply_win)
            data = info.read_data()
            yield from self.api.post_buffer(self.reply_win, buffer=info.record.buffer)
            self._feed(data)
            progressed = True
        return progressed

    def _poll_until(self, req_id: int, until: float) -> Generator:
        """Poll for *req_id*'s reply until sim-time *until*; True if seen."""
        poll = self.robustness.poll_interval_ns
        while True:
            if req_id in self._replies:
                return True
            yield from self._drain_ready()
            if req_id in self._replies:
                return True
            now = self.api.sim.now
            if now >= until:
                return False
            yield min(poll, until - now)

    def _await_reply_robust(self, req_id: int, deadline: float) -> Generator:
        """Wait with timeout → retransmit → backoff, bounded by *deadline*.

        Timeouts double per retry up to the cap with deterministic
        jitter (named ``kv.client.jitter`` stream — the reliability
        layer's backoff idiom); every wait clamps to the deadline, and
        reaching it resolves the op as ``STATUS_DEADLINE_EXCEEDED``.
        """
        cfg = self.robustness
        rng = self.api.sim.rng
        timeout = cfg.request_timeout_ns
        attempt = 0
        while True:
            now = self.api.sim.now
            if req_id in self._replies:
                return self._take_reply(req_id)
            if now >= deadline:
                self._outstanding.discard(req_id)
                self._frames.pop(req_id, None)
                self._replies.pop(req_id, None)
                self._deadline_misses.add()
                return KvReply(STATUS_DEADLINE_EXCEEDED, req_id), now
            jitter = 1.0 + cfg.jitter_frac * rng.random("kv.client.jitter")
            got = yield from self._poll_until(req_id, min(now + timeout * jitter, deadline))
            if got or self.api.sim.now >= deadline:
                continue
            self._timeouts.add()
            if attempt < cfg.max_retries:
                attempt += 1
                self._retries.add()
                self._tenant_retries.add()
                shard, frame = self._frames[req_id]
                put_op = yield from self._stream_to(shard).send(frame)
                yield put_op.local_done
                timeout = min(timeout * cfg.backoff_factor, cfg.max_backoff_ns)
            # Retry budget spent: keep polling out the remaining deadline.

    def _one(self, op: int, key: bytes, value: bytes = b"") -> Generator:
        replies = yield from self.execute_batch([(op, key, value)])
        return replies[0]

    def put(self, key: bytes, value: bytes) -> Generator:
        """Store *value* under *key*; returns the reply status."""
        reply = yield from self._one(OP_PUT, key, value)
        return reply.status

    def get(self, key: bytes) -> Generator:
        """Fetch *key*; returns ``(status, value)``."""
        reply = yield from self._one(OP_GET, key)
        return reply.status, reply.payload

    def delete(self, key: bytes) -> Generator:
        """Remove *key*; returns the reply status."""
        reply = yield from self._one(OP_DELETE, key)
        return reply.status

    def scan(self, prefix: bytes) -> Generator:
        """List stored ``(key, value)`` pairs under *prefix*.

        Keys hash across shards, so a prefix scan is scatter-gather: one
        SCAN frame to every shard, merged sorted on the client.  Each
        shard's contribution is bounded by the server's ``scan_limit``.
        """
        start = self.api.sim.now
        if self.recorder is not None:
            self.recorder.note(
                start, self.tenant_id, self.client_id, OP_SCAN, prefix, 0
            )
        req_ids: list[int] = []
        for shard in range(self.map.n_shards):
            self._next_req += 1
            req_ids.append(self._next_req)
            self._outstanding.add(self._next_req)
            frame = encode_request(
                OP_SCAN, self.client_id, self._next_req, prefix, tenant=self.tenant_id
            )
            put_op = yield from self._stream_to(shard).send(frame)
            yield put_op.local_done
        items: list[tuple[bytes, bytes]] = []
        last_seen = start
        for req_id in req_ids:
            reply, seen_at = yield from self._await_reply(req_id)
            last_seen = max(last_seen, seen_at)
            items.extend(decode_scan_payload(reply.payload))
        self._latency.add(last_seen - start)
        return sorted(items)
