"""A sharded key-value service layered on RVMA primitives.

The keyspace is hashed (``core.addressing.stable_hash64``) onto shards;
each shard is one receiver-managed request mailbox on a server node
(paper §IV-B streams), so *many initiators hammer few targets
continuously* — the regime RVMA's receiver-side buffer management is
built for.  Clients append whole request frames to the shard stream
with plain ``RVMA_Put``; servers sweep their shards, decode, execute,
and put *batched* reply frames back to per-client completion mailboxes
(STEERED, one epoch per put, like any other RVMA response channel).

Backpressure is not implemented here because it already exists: when a
shard's bucket runs dry the NIC NACKs ``NO_BUFFER`` and — with the
reliability transport enabled — the sender's transport holds the flow
against ``flow_room`` until the server re-posts chunks.  Run the
cluster with ``RvmaNicConfig(reliability=...)`` to get that hold path
(and ordered whole-message dispatch into the managed stream).

Client ids are self-describing: ``client_id = (node_id << 8) | index``,
so a server can route the reply without any membership registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..core.addressing import stable_hash64
from ..core.api import RvmaApi
from ..core.receiver_managed import StreamClient, StreamServer
from ..core.status import RvmaStatus
from ..network.routing import RoutingMode
from ..nic.lut import BufferMode, EpochType
from ..sim.process import spawn
from .wire import (
    OP_DELETE,
    OP_GET,
    OP_NAMES,
    OP_PUT,
    OP_SCAN,
    STATUS_NOT_FOUND,
    STATUS_OK,
    KvReply,
    KvRequest,
    ReplyDecoder,
    RequestDecoder,
    decode_scan_payload,
    encode_request,
    encode_scan_payload,
)

#: Mailbox bases: shard request streams and per-client reply mailboxes
#: live in disjoint slices of the 48-bit (PID-local) mailbox space.
REQUEST_MAILBOX_BASE = 0x5E4B_0000
REPLY_MAILBOX_BASE = 0x5EC7_0000

#: ``service.kv.request_latency_ns`` binning: 500 ns resolution out to
#: 400 µs; heavier tails land in the overflow bucket (percentile() then
#: reports the upper edge).
LATENCY_HI_NS = 400_000.0
LATENCY_NBINS = 800


def client_id_of(node_id: int, index: int) -> int:
    """Self-describing client id (reply-routable without a registry)."""
    if not 0 <= index < 256:
        raise ValueError("client index must fit in 8 bits")
    return (node_id << 8) | index


def node_of_client(client_id: int) -> int:
    return client_id >> 8


class ShardMap:
    """Hash → shard → (server node, request mailbox) placement.

    Shards round-robin across the server nodes so consecutive shard ids
    spread load; the mapping is pure arithmetic, identical on every
    node, and needs no coordination — exactly the property mailbox
    indirection buys over address-based RDMA placement.
    """

    def __init__(
        self,
        server_nodes: list[int],
        shards_per_node: int = 1,
        request_mailbox_base: int = REQUEST_MAILBOX_BASE,
    ) -> None:
        if not server_nodes:
            raise ValueError("shard map requires at least one server node")
        if shards_per_node < 1:
            raise ValueError("shards_per_node must be >= 1")
        self.server_nodes = list(server_nodes)
        self.shards_per_node = shards_per_node
        self.n_shards = len(server_nodes) * shards_per_node
        self.request_mailbox_base = request_mailbox_base

    def shard_of(self, key: bytes) -> int:
        return stable_hash64(key) % self.n_shards

    def node_of(self, shard: int) -> int:
        return self.server_nodes[shard % len(self.server_nodes)]

    def mailbox_of(self, shard: int) -> int:
        return self.request_mailbox_base + shard

    def locate(self, key: bytes) -> tuple[int, int, int]:
        """(shard, server node, request mailbox) for *key*."""
        shard = self.shard_of(key)
        return shard, self.node_of(shard), self.mailbox_of(shard)

    def shards_on(self, node_id: int) -> list[int]:
        return [s for s in range(self.n_shards) if self.node_of(s) == node_id]


@dataclass
class KvServerConfig:
    """Server-side stream and sweep tuning."""

    #: Managed-stream chunk size per shard (== epoch byte threshold).
    chunk_bytes: int = 4096
    #: Chunks armed per shard bucket (receiver-side credit).
    n_chunks: int = 4
    #: Sweep interval when a shard is idle (partial chunks are flushed
    #: via ``RVMA_Win_inc_epoch`` so small requests never stall).
    poll_interval_ns: float = 2000.0
    #: Max items returned per SCAN.
    scan_limit: int = 64
    reply_mailbox_base: int = REPLY_MAILBOX_BASE


class KvServer:
    """One node's shard servers: stream sweeps, stores, batched replies."""

    def __init__(self, node, shard_map: ShardMap, config: Optional[KvServerConfig] = None) -> None:
        self.node = node
        self.api = RvmaApi(node)
        self.map = shard_map
        self.config = config or KvServerConfig()
        self.shards = shard_map.shards_on(node.node_id)
        #: shard → key/value store (plain dict; durability is out of scope).
        self.stores: dict[int, dict[bytes, bytes]] = {s: {} for s in self.shards}
        self.streams: dict[int, StreamServer] = {}
        self._stopped = False
        self._procs: list = []
        stats = node.sim.stats
        self._requests = stats.counter("service.kv.requests")
        self._replies = stats.counter("service.kv.replies")
        self._not_found = stats.counter("service.kv.not_found")
        self._bytes_in = stats.counter("service.kv.bytes_in")
        self._bytes_out = stats.counter("service.kv.bytes_out")
        self._flushes = stats.counter("service.kv.flushes")
        self._reply_batch = stats.summary("service.kv.reply_batch")
        self._queue_depth = stats.summary("service.kv.shard_queue_depth")

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "KvServer":
        """Spawn one sweep process per local shard."""
        for shard in self.shards:
            self._procs.append(
                spawn(self.node.sim, self._shard_loop(shard), name=f"kv-shard{shard}")
            )
        return self

    def stop(self) -> None:
        """Stop sweeping at the next idle wakeup (processes drain out)."""
        self._stopped = True

    @property
    def finished(self) -> bool:
        return all(p.finished for p in self._procs)

    # ------------------------------------------------------------------ sweeping

    def _stream_backlog(self, stream: StreamServer) -> int:
        """Bytes sitting in the shard's *active* (unretired) chunk.

        A host-side peek at the NIC's threshold counter — the same word
        ``RVMA_Win_get_epoch`` reads — used to decide whether an early
        flush would surface anything.
        """
        entry = self.api.nic.lut.entries.get(stream.win.virtual_addr)
        if entry is None or entry.active is None:
            return 0
        return int(entry.active.counter)

    def _shard_loop(self, shard: int) -> Generator:
        cfg = self.config
        stream = StreamServer(self.api, self.map.mailbox_of(shard), cfg.chunk_bytes, cfg.n_chunks)
        self.streams[shard] = stream
        yield from stream.open()
        decoder = RequestDecoder()
        store = self.stores[shard]
        while not self._stopped:
            if stream.poll_ready():
                data = yield from stream.recv()
            elif self._stream_backlog(stream) > 0:
                # Small requests must not wait for a full chunk: hand the
                # partial buffer to software now (paper's inc_epoch).
                status = yield from stream.flush()
                if status is not RvmaStatus.SUCCESS:
                    yield cfg.poll_interval_ns
                    continue
                self._flushes.add()
                data = yield from stream.recv()
            else:
                yield cfg.poll_interval_ns
                continue
            if not data:
                continue
            self._bytes_in.add(len(data))
            requests = decoder.feed(data)
            self._queue_depth.add(len(requests))
            if not requests:
                continue
            yield from self._execute_batch(shard, store, requests)
        yield from stream.close()

    def _execute_batch(self, shard: int, store: dict, requests: list[KvRequest]) -> Generator:
        spans = self.node.sim.spans
        by_client: dict[int, list[bytes]] = {}
        for req in requests:
            sp = None
            if spans.active and spans.wants("service"):
                sp = spans.begin(
                    "service", f"kv_{OP_NAMES[req.op]}", shard=shard, client=req.client_id
                )
            reply = self._execute(store, req)
            if sp is not None:
                spans.end(sp, status=reply.status)
            self._requests.add()
            by_client.setdefault(req.client_id, []).append(reply.encode())
        # Batched replies: one put per client per sweep, however many of
        # its requests this sweep decoded.
        for client_id, frames in sorted(by_client.items()):
            batch = b"".join(frames)
            self._reply_batch.add(len(frames))
            self._replies.add(len(frames))
            self._bytes_out.add(len(batch))
            op = yield from self.api.put(
                node_of_client(client_id),
                self.config.reply_mailbox_base + client_id,
                data=batch,
                mode=RoutingMode.STATIC,
            )
            yield op.local_done

    def _execute(self, store: dict, req: KvRequest) -> KvReply:
        if req.op == OP_PUT:
            store[req.key] = req.value
            return KvReply(STATUS_OK, req.req_id)
        if req.op == OP_GET:
            value = store.get(req.key)
            if value is None:
                self._not_found.add()
                return KvReply(STATUS_NOT_FOUND, req.req_id)
            return KvReply(STATUS_OK, req.req_id, value)
        if req.op == OP_DELETE:
            if store.pop(req.key, None) is None:
                self._not_found.add()
                return KvReply(STATUS_NOT_FOUND, req.req_id)
            return KvReply(STATUS_OK, req.req_id)
        # OP_SCAN: key is the prefix; bounded, sorted listing.
        items = [
            (k, v)
            for k, v in sorted(store.items())
            if k.startswith(req.key)
        ][: self.config.scan_limit]
        return KvReply(STATUS_OK, req.req_id, encode_scan_payload(items))


class KvClient:
    """Blocking client endpoint: request streams out, replies in.

    One client = one completion mailbox (STEERED, epoch per put) plus a
    cached :class:`StreamClient` per shard it has touched.  ``get`` /
    ``put`` / ``delete`` / ``scan`` block for their reply;
    :meth:`execute_batch` pipelines several frames in one stream put and
    collects the (server-batched) replies, which is what the load
    generator uses to drive reply batching.
    """

    def __init__(
        self,
        api: RvmaApi,
        shard_map: ShardMap,
        index: int = 0,
        reply_mailbox_base: int = REPLY_MAILBOX_BASE,
        reply_slots: int = 8,
        max_reply_bytes: int = 8192,
        max_put_bytes: int = 4096,
        mode: RoutingMode = RoutingMode.STATIC,
    ) -> None:
        self.api = api
        self.map = shard_map
        self.mode = mode
        #: Largest request put (liveness bound): a put bigger than the
        #: shard's bucket can never acquire ``flow_room`` and the
        #: transport would hold it forever, so batches are split to stay
        #: within one server chunk (keep this <= KvServerConfig.chunk_bytes).
        self.max_put_bytes = max_put_bytes
        self.client_id = client_id_of(api.node.node_id, index)
        self.reply_mailbox = reply_mailbox_base + self.client_id
        self.reply_slots = reply_slots
        self.max_reply_bytes = max_reply_bytes
        self.reply_win = None
        self._streams: dict[int, StreamClient] = {}
        self._decoder = ReplyDecoder()
        self._replies: dict[int, tuple[KvReply, float]] = {}
        self._next_req = 0
        self._latency = api.sim.stats.histogram(
            "service.kv.request_latency_ns", lo=0.0, hi=LATENCY_HI_NS, nbins=LATENCY_NBINS
        )

    def open(self) -> Generator:
        """Create the completion mailbox and arm its reply buffers."""
        self.reply_win = yield from self.api.init_window(
            self.reply_mailbox,
            epoch_threshold=1,
            epoch_type=EpochType.EPOCH_OPS,
            mode=BufferMode.STEERED,
        )
        for _ in range(self.reply_slots):
            yield from self.api.post_buffer(self.reply_win, size=self.max_reply_bytes)
        return self

    def _stream_to(self, shard: int) -> StreamClient:
        stream = self._streams.get(shard)
        if stream is None:
            stream = self._streams[shard] = StreamClient(
                self.api, self.map.node_of(shard), self.map.mailbox_of(shard), self.mode
            )
        return stream

    # ------------------------------------------------------------------ requests

    def execute_batch(
        self, ops: list[tuple[int, bytes, bytes]], t0: Optional[float] = None
    ) -> Generator:
        """Issue *ops* (``(op, key, value)`` tuples) as pipelined frames.

        Frames for the same shard travel in one stream put.  Returns the
        replies in issue order.  *t0* overrides the latency-measurement
        start (open-loop generators pass the intended arrival time so
        queueing delay counts).
        """
        start = self.api.sim.now if t0 is None else t0
        by_shard: dict[int, list[bytes]] = {}
        req_ids: list[int] = []
        for op, key, value in ops:
            self._next_req += 1
            req_id = self._next_req
            req_ids.append(req_id)
            frame = encode_request(op, self.client_id, req_id, key, value)
            if len(frame) > self.max_put_bytes:
                raise ValueError(
                    f"request frame of {len(frame)}B exceeds max_put_bytes="
                    f"{self.max_put_bytes} (would hold forever against flow_room)"
                )
            by_shard.setdefault(self.map.shard_of(key), []).append(frame)
        for shard in sorted(by_shard):
            for chunk in self._pack(by_shard[shard]):
                put_op = yield from self._stream_to(shard).send(chunk)
                yield put_op.local_done
        replies = []
        for req_id in req_ids:
            reply, seen_at = yield from self._await_reply(req_id)
            self._latency.add(seen_at - start)
            replies.append(reply)
        return replies

    def _pack(self, frames: list[bytes]) -> list[bytes]:
        """Greedily coalesce whole frames into puts of <= max_put_bytes."""
        puts: list[bytes] = []
        cur: list[bytes] = []
        size = 0
        for frame in frames:
            if cur and size + len(frame) > self.max_put_bytes:
                puts.append(b"".join(cur))
                cur, size = [], 0
            cur.append(frame)
            size += len(frame)
        if cur:
            puts.append(b"".join(cur))
        return puts

    def _await_reply(self, req_id: int) -> Generator:
        while req_id not in self._replies:
            info = yield from self.api.wait_completion(self.reply_win)
            data = info.read_data()
            yield from self.api.post_buffer(self.reply_win, buffer=info.record.buffer)
            now = self.api.sim.now
            for reply in self._decoder.feed(data):
                self._replies[reply.req_id] = (reply, now)
        return self._replies.pop(req_id)

    def _one(self, op: int, key: bytes, value: bytes = b"") -> Generator:
        replies = yield from self.execute_batch([(op, key, value)])
        return replies[0]

    def put(self, key: bytes, value: bytes) -> Generator:
        """Store *value* under *key*; returns the reply status."""
        reply = yield from self._one(OP_PUT, key, value)
        return reply.status

    def get(self, key: bytes) -> Generator:
        """Fetch *key*; returns ``(status, value)``."""
        reply = yield from self._one(OP_GET, key)
        return reply.status, reply.payload

    def delete(self, key: bytes) -> Generator:
        """Remove *key*; returns the reply status."""
        reply = yield from self._one(OP_DELETE, key)
        return reply.status

    def scan(self, prefix: bytes) -> Generator:
        """List stored ``(key, value)`` pairs under *prefix*.

        Keys hash across shards, so a prefix scan is scatter-gather: one
        SCAN frame to every shard, merged sorted on the client.  Each
        shard's contribution is bounded by the server's ``scan_limit``.
        """
        start = self.api.sim.now
        req_ids: list[int] = []
        for shard in range(self.map.n_shards):
            self._next_req += 1
            req_ids.append(self._next_req)
            frame = encode_request(OP_SCAN, self.client_id, self._next_req, prefix)
            put_op = yield from self._stream_to(shard).send(frame)
            yield put_op.local_done
        items: list[tuple[bytes, bytes]] = []
        last_seen = start
        for req_id in req_ids:
            reply, seen_at = yield from self._await_reply(req_id)
            last_seen = max(last_seen, seen_at)
            items.extend(decode_scan_payload(reply.payload))
        self._latency.add(last_seen - start)
        return sorted(items)
