"""Services layered on RVMA: the sharded key-value workload.

The first subsystem in the repo where many initiators hammer few
targets continuously — a serving workload, not an HPC motif.  The
keyspace hashes onto per-node request mailboxes, requests flow over
receiver-managed streams, replies batch back to per-client completion
mailboxes, and backpressure rides the existing ``flow_room`` /
``NO_BUFFER`` hold path of the reliability transport.
"""

from .kv import (
    KvClient,
    KvServer,
    KvServerConfig,
    ShardMap,
    client_id_of,
    node_of_client,
)
from .loadgen import LoadGenerator, LoadStats, WorkloadConfig, ZipfSampler
from .wire import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SCAN,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    KvReply,
    KvRequest,
    ReplyDecoder,
    RequestDecoder,
    WireError,
)

__all__ = [
    "KvClient",
    "KvServer",
    "KvServerConfig",
    "ShardMap",
    "client_id_of",
    "node_of_client",
    "LoadGenerator",
    "LoadStats",
    "WorkloadConfig",
    "ZipfSampler",
    "KvReply",
    "KvRequest",
    "ReplyDecoder",
    "RequestDecoder",
    "WireError",
    "OP_GET",
    "OP_PUT",
    "OP_DELETE",
    "OP_SCAN",
    "STATUS_OK",
    "STATUS_NOT_FOUND",
    "STATUS_ERROR",
]
