"""Services layered on RVMA: the sharded key-value workload.

The first subsystem in the repo where many initiators hammer few
targets continuously — a serving workload, not an HPC motif.  The
keyspace hashes onto per-node request mailboxes, requests flow over
receiver-managed streams, replies batch back to per-client completion
mailboxes, and backpressure rides the existing ``flow_room`` /
``NO_BUFFER`` hold path of the reliability transport.

Multi-tenant QoS (:mod:`repro.services.qos` /
:mod:`repro.services.tenancy`, docs/QOS.md) layers isolation on top:
tenant ids in the request framing, NIC placement quotas, token-bucket
admission with p99-driven ``RC_OVERLOAD`` shedding, deficit-round-robin
weighted-fair service, and client-side deadlines with backoff retries.
"""

from .kv import (
    KvClient,
    KvServer,
    KvServerConfig,
    ShardMap,
    client_id_of,
    node_of_client,
)
from .loadgen import LoadGenerator, LoadStats, WorkloadConfig, ZipfSampler
from .qos import (
    AdmissionController,
    ClientRobustnessConfig,
    DeficitRoundRobin,
    QosConfig,
    TokenBucket,
)
from .tenancy import (
    PlacementQuota,
    TenantDirectory,
    TenantSpec,
    install_placement_quota,
)
from .wire import (
    DEFAULT_TENANT,
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SCAN,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_OVERLOAD,
    KvReply,
    KvRequest,
    ReplyDecoder,
    RequestDecoder,
    WireError,
)

__all__ = [
    "KvClient",
    "KvServer",
    "KvServerConfig",
    "ShardMap",
    "client_id_of",
    "node_of_client",
    "LoadGenerator",
    "LoadStats",
    "WorkloadConfig",
    "ZipfSampler",
    "AdmissionController",
    "ClientRobustnessConfig",
    "DeficitRoundRobin",
    "QosConfig",
    "TokenBucket",
    "PlacementQuota",
    "TenantDirectory",
    "TenantSpec",
    "install_placement_quota",
    "KvReply",
    "KvRequest",
    "ReplyDecoder",
    "RequestDecoder",
    "WireError",
    "OP_GET",
    "OP_PUT",
    "OP_DELETE",
    "OP_SCAN",
    "STATUS_OK",
    "STATUS_NOT_FOUND",
    "STATUS_ERROR",
    "STATUS_OVERLOAD",
    "STATUS_DEADLINE_EXCEEDED",
    "DEFAULT_TENANT",
]
