"""Calibrated timing models and microbenchmarks (Figs 4-6)."""

from .amortization import (
    DEFAULT_TOLERANCE,
    AmortizationPoint,
    amortization_analysis,
    measure_setup_ns,
)
from .bandwidth import (
    BandwidthPoint,
    message_rate_comparison,
    rdma_bandwidth,
    rvma_bandwidth,
)
from .cache import clear_timing_caches, memoize_timing
from .calibration import (
    FIG45_SIZES,
    TESTBEDS,
    Testbed,
    UCX_CX5_THUNDERX2,
    VERBS_OPA_SKYLAKE,
)
from .validation import ValidationCheck, report as validation_report, validate
from .microbench import (
    LatencyPoint,
    latency_sweep,
    rdma_ucx_latency,
    rdma_verbs_latency,
    rvma_latency,
)

__all__ = [
    "AmortizationPoint",
    "BandwidthPoint",
    "DEFAULT_TOLERANCE",
    "FIG45_SIZES",
    "LatencyPoint",
    "TESTBEDS",
    "Testbed",
    "UCX_CX5_THUNDERX2",
    "VERBS_OPA_SKYLAKE",
    "amortization_analysis",
    "clear_timing_caches",
    "latency_sweep",
    "memoize_timing",
    "measure_setup_ns",
    "message_rate_comparison",
    "rdma_bandwidth",
    "rvma_bandwidth",
    "rdma_ucx_latency",
    "rdma_verbs_latency",
    "rvma_latency",
    "ValidationCheck",
    "validate",
    "validation_report",
]
