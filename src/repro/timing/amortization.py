"""Fig 6: how many exchanges amortize RDMA's buffer-setup cost.

RDMA cannot move a byte until the Fig-1 handshake (request, allocate,
register, reply with (addr, len, rkey)) completes; RVMA starts cold.
Microbenchmarks hide this by reusing one buffer for thousands of
iterations.  Fig 6 asks: *how many* reuses until the per-exchange cost
is within the latency test's margin of error (3%) of steady state?

    N >= setup / (tol * steady_latency)

The paper reports this for both current static-routing practice
(last-byte completion) and adaptive routing (send/recv completion);
faster steady latency means *more* exchanges are needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

from ..network.routing import RoutingMode
from ..rdma.completion_modes import CompletionMode
from ..rdma.handshake import client_request_region, server_serve_region
from ..rdma.verbs import VerbsEndpoint
from ..sim.process import spawn
from .cache import memoize_timing
from .calibration import Testbed
from .microbench import rdma_ucx_latency, rdma_verbs_latency

#: The paper's margin of error for its latency tests.
DEFAULT_TOLERANCE = 0.03


@dataclass
class AmortizationPoint:
    """One message size's amortization requirement (a Fig 6 point)."""

    size: int
    setup_ns: float
    steady_ns: float
    tolerance: float

    @property
    def exchanges_needed(self) -> int:
        """Exchanges until mean per-exchange cost is within tolerance."""
        return max(1, math.ceil(self.setup_ns / (self.tolerance * self.steady_ns)))


@memoize_timing
def measure_setup_ns(testbed: Testbed, size: int, interface: str = "ucx") -> float:
    """Simulate the Fig-1 handshake and return its elapsed ns.

    The UCX flavour adds rkey pack/unpack (ucp_mem_map wireup) on top of
    the raw registration + address exchange.
    """
    from .microbench import _build  # shared cluster construction

    cl = _build(testbed, "rdma", RoutingMode.STATIC, "packet")
    v0 = VerbsEndpoint(cl.node(0), testbed.verbs)
    v1 = VerbsEndpoint(cl.node(1), testbed.verbs)
    result: list[float] = []

    def server() -> Generator:
        if interface == "ucx":
            # ucp_rkey pack happens before the descriptor is shipped,
            # inside the window the client is timing.
            yield testbed.ucp.rkey_pack
        yield from server_serve_region(v1, client=0)

    def client() -> Generator:
        t0 = cl.sim.now
        yield from client_request_region(v0, server=1, size=size)
        if interface == "ucx":
            yield testbed.ucp.rkey_pack  # rkey unpack + endpoint wireup
        result.append(cl.sim.now - t0)

    spawn(cl.sim, server(), "hs-server")
    spawn(cl.sim, client(), "hs-client")
    cl.sim.run()
    if not result:
        raise RuntimeError("handshake did not complete")
    return result[-1]


def amortization_analysis(
    testbed: Testbed,
    sizes: list[int],
    interface: str = "ucx",
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict[str, list[AmortizationPoint]]:
    """Fig 6 data: exchanges-to-amortize per size, for static and
    adaptive routing steady-state baselines."""
    out: dict[str, list[AmortizationPoint]] = {"static": [], "adaptive": []}
    for size in sizes:
        setup = measure_setup_ns(testbed, size, interface)
        if interface == "ucx":
            steady_static = rdma_ucx_latency(
                testbed, size, routing=RoutingMode.STATIC,
                completion=CompletionMode.LAST_BYTE_POLL,
            )
            steady_adaptive = rdma_ucx_latency(
                testbed, size, routing=RoutingMode.ADAPTIVE,
                completion=CompletionMode.SEND_RECV,
            )
        else:
            steady_static = rdma_verbs_latency(
                testbed, size, CompletionMode.LAST_BYTE_POLL, RoutingMode.STATIC
            )
            steady_adaptive = rdma_verbs_latency(
                testbed, size, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE
            )
        out["static"].append(
            AmortizationPoint(size, setup, steady_static, tolerance)
        )
        out["adaptive"].append(
            AmortizationPoint(size, setup, steady_adaptive, tolerance)
        )
    return out
