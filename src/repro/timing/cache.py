"""Value-keyed memoization for pure timing-model measurements.

Every function in this package is a pure function of its arguments: a
measurement builds a fresh fixed-seed cluster, runs it, and returns a
number.  The figure pipelines re-request the same points repeatedly
(Fig 6 re-measures Fig 4/5 steady-state latencies; validation sweeps
share sizes with the figures), so identical calls are cached.

Keys are *value-based*: dataclass configs (Testbed, NIC/network
configs) are frozen field-by-field, so two structurally equal testbeds
hit the same entry even if they are distinct objects.  Cached return
values must be treated as immutable by callers.

``clear_timing_caches()`` drops every cache — tests use it to prove a
cached result equals a fresh one.
"""

from __future__ import annotations

import dataclasses
import enum
from functools import wraps
from typing import Any, Callable

#: Every cache created by :func:`memoize_timing`, for global clearing.
_CACHES: list[dict] = []


def _freeze(value: Any) -> Any:
    """Deterministic hashable key for an argument value."""
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    # Last resort: repr is value-based for the config objects used here.
    return repr(value)


def memoize_timing(fn: Callable) -> Callable:
    """Memoize a pure timing measurement on frozen argument values."""
    cache: dict = {}
    _CACHES.append(cache)

    @wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        key = (
            tuple(_freeze(a) for a in args),
            tuple(sorted((k, _freeze(v)) for k, v in kwargs.items())),
        )
        try:
            return cache[key]
        except KeyError:
            result = cache[key] = fn(*args, **kwargs)
            return result

    wrapper.cache = cache  # type: ignore[attr-defined]
    wrapper.__wrapped__ = fn
    return wrapper


def clear_timing_caches() -> None:
    """Drop every memoized timing result (tests, config experiments)."""
    for cache in _CACHES:
        cache.clear()
