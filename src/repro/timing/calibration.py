"""Calibrated testbed models for the paper's real-world figures.

The paper measured two systems:

* **Fig 4 (Verbs)** — Intel OmniPath 100 Gbps on Skylake (Platinum 8160)
  nodes, native Verbs.
* **Figs 5-6 (UCX)** — Mellanox ConnectX-5 EDR 100 Gbps on Marvell
  ThunderX2 CN9975 nodes, UCX 1.9.0 (UCP layer).

We obviously have neither machine.  Following the paper's own
differential methodology (time the RDMA sequence, delete the operations
RVMA does not need), we model each testbed with cost constants anchored
to public perftest/OSU-class measurements of those parts: ~1 us-class
small-message put latency on OPA/Skylake, somewhat higher software
overheads on the ThunderX2's slower single-thread cores, and Gen3-era
PCIe.  Absolute numbers are approximations; the differential structure
(what RVMA removes) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.pcie import GEN3, PcieGen
from ..network.config import NetworkConfig
from ..network.routing import RoutingMode
from ..nic.base import NicConfig
from ..nic.rdma import RdmaNicConfig
from ..nic.rvma import RvmaNicConfig
from ..rdma.ucx import UcpCosts
from ..rdma.verbs import VerbsCosts
from ..units import gbps


@dataclass(frozen=True)
class Testbed:
    """One calibrated hardware/software stack for the microbenchmarks."""

    name: str
    description: str
    net: NetworkConfig
    pcie: PcieGen
    nic_proc: float
    issue_overhead: float
    verbs: VerbsCosts
    ucp: UcpCosts
    #: RVMA user-library per-call overhead (thin shim over the NIC).
    rvma_sw_overhead: float = 30.0

    def rvma_nic_config(self) -> RvmaNicConfig:
        return RvmaNicConfig(
            pcie=self.pcie, nic_proc=self.nic_proc, issue_overhead=self.issue_overhead
        )

    def rdma_nic_config(self) -> RdmaNicConfig:
        return RdmaNicConfig(
            pcie=self.pcie, nic_proc=self.nic_proc, issue_overhead=self.issue_overhead
        )


#: Fig 4 testbed: OmniPath 100G + Skylake, native Verbs.
VERBS_OPA_SKYLAKE = Testbed(
    name="opa100-skylake-verbs",
    description="Intel OmniPath 100Gbps, Xeon Platinum 8160, IB Verbs",
    net=NetworkConfig(
        link_bw=gbps(100),
        hop_latency=40.0,
        injection_latency=10.0,
        switch_latency=110.0,  # OPA Edge switch port-to-port
        routing=RoutingMode.STATIC,
    ),
    pcie=GEN3,
    nic_proc=30.0,
    issue_overhead=50.0,
    verbs=VerbsCosts(
        post_send=90.0,
        post_recv=70.0,
        poll_cq=45.0,
        reg_mr_base=1600.0,
        reg_mr_per_kb=55.0,
    ),
    ucp=UcpCosts(),  # unused on this testbed
    rvma_sw_overhead=30.0,
)

#: Figs 5-6 testbed: ConnectX-5 EDR + ThunderX2, UCX 1.9.0.  ARM cores
#: run the software paths ~1.5x slower than Skylake.
UCX_CX5_THUNDERX2 = Testbed(
    name="cx5-thunderx2-ucx",
    description="Mellanox ConnectX-5 EDR 100Gbps, ThunderX2 CN9975, UCX 1.9.0",
    net=NetworkConfig(
        link_bw=gbps(100),
        hop_latency=40.0,
        injection_latency=10.0,
        switch_latency=90.0,  # EDR Quantum switch port-to-port
        routing=RoutingMode.STATIC,
    ),
    pcie=GEN3,
    nic_proc=35.0,
    issue_overhead=75.0,
    verbs=VerbsCosts(
        post_send=140.0,
        post_recv=110.0,
        poll_cq=70.0,
        reg_mr_base=2400.0,
        reg_mr_per_kb=80.0,
    ),
    ucp=UcpCosts(
        put_nbi=240.0,
        flush=180.0,
        tag_send=290.0,
        tag_recv=320.0,
        progress=90.0,
        rkey_pack=1400.0,
        reg_mr_base=2400.0,
        reg_mr_per_kb=80.0,
    ),
    # The RVMA shim on this testbed is routed through the UCP dispatch
    # path (put_nbi-class dispatch + worker progress), matching how the
    # paper instrumented UCX operations and removed only what RVMA
    # does not need.
    rvma_sw_overhead=330.0,
)

TESTBEDS = {t.name: t for t in (VERBS_OPA_SKYLAKE, UCX_CX5_THUNDERX2)}

#: Message sizes swept in Figs 4-5 (2 B to 64 KiB, powers of two).
FIG45_SIZES = [2 ** k for k in range(1, 17)]
