"""Model validation against published reference points.

The paper validated its SST models "against performance results from
existing RDMA solutions".  We do the analogous thing: every headline
quantity our simulator produces for the calibrated testbeds must fall
inside ranges established by public measurements of comparable hardware
(OSU/perftest numbers for OmniPath and EDR InfiniBand, vendor switch
specs, PCIe specs).  `validate()` returns a structured report; a test
asserts every check passes, so recalibrating a constant that breaks
plausibility fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.routing import RoutingMode
from ..rdma.completion_modes import CompletionMode
from .bandwidth import rvma_bandwidth
from .calibration import Testbed, UCX_CX5_THUNDERX2, VERBS_OPA_SKYLAKE
from .microbench import rdma_verbs_latency, rvma_latency


@dataclass(frozen=True)
class ValidationCheck:
    """One plausibility constraint on a simulated quantity."""

    name: str
    reference: str  # where the plausible range comes from
    lo: float
    hi: float
    measured: float

    @property
    def ok(self) -> bool:
        return self.lo <= self.measured <= self.hi


def validate() -> list[ValidationCheck]:
    """Run every plausibility check; returns the full report."""
    checks: list[ValidationCheck] = []

    # --- small-message one-way latency, OPA/Skylake class -----------------
    # Public OmniPath MPI/PSM2 one-way latencies sit around 0.8-1.2 us;
    # a bare put with lightweight completion should land just under.
    lat_small = rvma_latency(VERBS_OPA_SKYLAKE, 8)
    checks.append(ValidationCheck(
        "opa_small_put_one_way_ns",
        "OmniPath PSM2/verbs published ~0.8-1.2us one-way",
        600.0, 1300.0, lat_small,
    ))

    # Statically-routed RDMA with last-byte polling: the fast path the
    # field actually measures; must agree with the same band.
    lat_lastbyte = rdma_verbs_latency(
        VERBS_OPA_SKYLAKE, 8, CompletionMode.LAST_BYTE_POLL, RoutingMode.STATIC
    )
    checks.append(ValidationCheck(
        "opa_lastbyte_write_one_way_ns",
        "perftest ib_write_lat-class results",
        600.0, 1300.0, lat_lastbyte,
    ))

    # The two fast paths must be within ~15% of each other (the paper's
    # "comparable" claim is meaningless if our model biases either way).
    checks.append(ValidationCheck(
        "rvma_vs_lastbyte_ratio",
        "paper §V-A1: RVMA comparable to statically-routed RDMA",
        0.85, 1.15, lat_small / lat_lastbyte,
    ))

    # --- large-message bandwidth ------------------------------------------------
    # 100 Gbps links: streamed large transfers reach >=90% of line rate
    # (12.5 B/ns) in vendor benchmarks.
    bw = rvma_bandwidth(VERBS_OPA_SKYLAKE, 512 * 1024, n_messages=16)
    checks.append(ValidationCheck(
        "opa_large_stream_bytes_per_ns",
        "100Gbps line rate, >=90% achievable (vendor ib_write_bw)",
        11.25, 12.5, bw.bytes_per_ns,
    ))

    # --- serialization sanity ----------------------------------------------------
    # A 64 KiB put at 100 Gbps must be dominated by ~5.3 us of wire
    # serialization; total one-way within [ser, ser + 3us overheads].
    ser = 65536 / VERBS_OPA_SKYLAKE.net.link_bw
    lat_big = rvma_latency(VERBS_OPA_SKYLAKE, 65536)
    checks.append(ValidationCheck(
        "opa_64k_put_vs_serialization_ns",
        "wire-serialization lower bound",
        ser, ser + 3000.0, lat_big,
    ))

    # --- ThunderX2/UCX class -------------------------------------------------------
    # Published UCX/MPI latencies on ThunderX2+EDR run ~1.2-2.5 us.
    lat_tx2 = rvma_latency(UCX_CX5_THUNDERX2, 8)
    checks.append(ValidationCheck(
        "tx2_small_put_one_way_ns",
        "ThunderX2 + EDR published UCX/MPI one-way band",
        1000.0, 2500.0, lat_tx2,
    ))

    # --- structural invariants -------------------------------------------------------
    # RDMA spec-compliant completion must cost MORE than the raw put on
    # the same testbed (it adds an ack fence + a message) but less than
    # 5x (sanity against double-charging).
    lat_rdma = rdma_verbs_latency(VERBS_OPA_SKYLAKE, 8)
    checks.append(ValidationCheck(
        "rdma_sendrecv_overhead_ratio",
        "structure: ack fence + 1 extra message on top of the put",
        1.5, 5.0, lat_rdma / lat_small,
    ))
    return checks


def report() -> str:
    """Human-readable validation report."""
    lines = ["model validation against published reference points:"]
    for c in validate():
        flag = "ok " if c.ok else "FAIL"
        lines.append(
            f"  [{flag}] {c.name}: {c.measured:.1f} in [{c.lo:.1f}, {c.hi:.1f}]"
            f"  ({c.reference})"
        )
    return "\n".join(lines)
