"""Streaming bandwidth / message-rate microbenchmarks.

Complements the latency study (Figs 4-5) the way perftest's ``_bw``
tests complement ``_lat``: a window of outstanding transfers streams
from one node to another and we measure achieved bytes/ns and
messages/us.

Expected physics (asserted by the bench): at large sizes both RVMA and
RDMA saturate the injection link — RVMA is not a bandwidth trick; at
small sizes RVMA's uncoordinated puts sustain a higher message rate
than RDMA's ready/ack/signal cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..core.api import RvmaApi
from ..memory.buffer import HostBuffer
from ..nic.cq import CqKind
from ..nic.lut import EpochType
from ..network.routing import RoutingMode
from ..rdma.handshake import client_request_region, server_serve_region
from ..rdma.verbs import VerbsEndpoint
from ..sim.process import AllOf, spawn
from .cache import memoize_timing
from .calibration import Testbed
from .microbench import _build

BW_MAILBOX = 0xB3
#: Outstanding transfers kept in flight (perftest tx-depth analogue).
DEFAULT_WINDOW = 16


@dataclass
class BandwidthPoint:
    """One streaming measurement."""

    size: int
    n_messages: int
    elapsed_ns: float

    @property
    def bytes_per_ns(self) -> float:
        return self.size * self.n_messages / self.elapsed_ns

    @property
    def msgs_per_us(self) -> float:
        return self.n_messages / (self.elapsed_ns / 1000.0)

    def link_utilisation(self, link_bw: float) -> float:
        """Fraction of raw link bandwidth achieved (payload bytes only)."""
        return self.bytes_per_ns / link_bw


@memoize_timing
def rvma_bandwidth(
    testbed: Testbed,
    size: int,
    n_messages: int = 64,
    window: int = DEFAULT_WINDOW,
    routing: RoutingMode = RoutingMode.ADAPTIVE,
) -> BandwidthPoint:
    """Streamed RVMA puts; elapsed measured first-post -> last-completion."""
    cl = _build(testbed, "rvma", routing, "flow")
    api0 = RvmaApi(cl.node(0), testbed.rvma_sw_overhead)
    api1 = RvmaApi(cl.node(1), testbed.rvma_sw_overhead)
    marks: dict[str, float] = {}

    def receiver() -> Generator:
        win = yield from api1.init_window(
            BW_MAILBOX, epoch_threshold=1, epoch_type=EpochType.EPOCH_OPS
        )
        for _ in range(n_messages):
            yield from api1.post_buffer(win, size=size)
        for _ in range(n_messages):
            yield from api1.wait_completion(win)
        marks["end"] = cl.sim.now

    def sender() -> Generator:
        yield 5000.0
        marks["start"] = cl.sim.now
        inflight = []
        for _ in range(n_messages):
            op = yield from api0.put(1, BW_MAILBOX, size=size)
            inflight.append(op.local_done)
            if len(inflight) >= window:
                yield inflight.pop(0)
        yield AllOf(inflight)

    spawn(cl.sim, receiver(), "bw-rx")
    spawn(cl.sim, sender(), "bw-tx")
    cl.sim.run()
    if "end" not in marks:
        raise RuntimeError("bandwidth stream incomplete")
    return BandwidthPoint(size, n_messages, marks["end"] - marks["start"])


@memoize_timing
def rdma_bandwidth(
    testbed: Testbed,
    size: int,
    n_messages: int = 64,
    window: int = DEFAULT_WINDOW,
    routing: RoutingMode = RoutingMode.ADAPTIVE,
) -> BandwidthPoint:
    """Streamed spec-compliant RDMA: per-message ready/write/ack/signal.

    The stream reuses one registered region per in-flight slot (the
    receiver must green-light reuse, as in the motif protocol), which is
    what bounds RDMA's message rate at small sizes.
    """
    cl = _build(testbed, "rdma", routing, "flow")
    v0 = VerbsEndpoint(cl.node(0), testbed.verbs)
    v1 = VerbsEndpoint(cl.node(1), testbed.verbs)
    marks: dict[str, float] = {}
    WR_READY, WR_SIG = 11, 12

    def server() -> Generator:
        landing, _region = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl.node(1).memory, 64, label="bw-ctl")
        # Green-light `window` transfers up front, then one per completion.
        for _ in range(window):
            yield from v1.send(0, 16, b"", tag=WR_READY, wr_id=WR_READY, signaled=False)
        done = 0
        while done < n_messages:
            yield from v1.post_recv(ctl, wr_id=WR_SIG, tag=WR_SIG)
            yield from v1.wait_cq(WR_SIG, CqKind.RECV)
            done += 1
            if done + window <= n_messages:
                yield from v1.send(0, 16, b"", tag=WR_READY, wr_id=WR_READY, signaled=False)
        marks["end"] = cl.sim.now

    def client() -> Generator:
        ready_buf = HostBuffer.allocate(cl.node(0).memory, 64, label="bw-ready")
        for _ in range(window):
            yield from v0.post_recv(ready_buf, wr_id=WR_READY, tag=WR_READY)
        hs = yield from client_request_region(v0, server=1, size=size)
        yield 5000.0
        marks["start"] = cl.sim.now
        for i in range(n_messages):
            yield from v0.wait_cq(WR_READY, CqKind.RECV)
            if i + window < n_messages:
                yield from v0.post_recv(ready_buf, wr_id=WR_READY, tag=WR_READY)
            op = yield from v0.rdma_write(1, hs.region, size, signaled=False)
            entry = yield op.done  # ack fence before the signal
            if not entry.ok:
                raise RuntimeError("stream write failed")
            yield from v0.send(1, 1, b"", tag=WR_SIG, wr_id=WR_SIG, signaled=False)
        marks["done_tx"] = cl.sim.now

    spawn(cl.sim, server(), "bw-srv")
    spawn(cl.sim, client(), "bw-cli")
    cl.sim.run()
    if "end" not in marks:
        raise RuntimeError("bandwidth stream incomplete")
    return BandwidthPoint(size, n_messages, marks["end"] - marks["start"])


def message_rate_comparison(
    testbed: Testbed, sizes: list[int], n_messages: int = 64
) -> list[tuple[int, BandwidthPoint, BandwidthPoint]]:
    """(size, rvma, rdma) streaming points across *sizes*."""
    return [
        (s, rvma_bandwidth(testbed, s, n_messages), rdma_bandwidth(testbed, s, n_messages))
        for s in sizes
    ]
