"""Microbenchmarks reproducing Figs 4-5: one-way completed-put latency.

The measured quantity matches the paper's modified OFED perftest: the
time from the initiator posting a put until the *target* observes the
transfer complete —

* RVMA: the NIC's threshold completion writes the completion pointer
  and the receiver's MWait/poll fires.  One message on the wire.
* RDMA (adaptive, spec-compliant): write, transport-ack fence at the
  initiator, then a 1-byte send whose recv CQE the target polls.
* RDMA (static routing): last-byte polling of the landing buffer —
  included to show RVMA is comparable to the static fast path.

Each measurement is a strict ping-pong (pong not timed) on a 2-node
single-switch cluster at packet fidelity, so multi-packet serialization
behaves like the real wire.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Generator

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..memory.buffer import HostBuffer
from ..memory.mwait import MWAIT, POLL
from ..nic.cq import CqKind
from ..nic.rdma import MAX_IMM_PAYLOAD
from ..network.routing import RoutingMode
from ..rdma.completion_modes import CompletionMode
from ..rdma.handshake import client_request_region, server_serve_region
from ..rdma.ucx import UcpEndpoint
from ..rdma.verbs import VerbsEndpoint
from ..sim.process import spawn
from .cache import memoize_timing
from .calibration import Testbed

PING_MAILBOX = 0xA11CE
PONG_MAILBOX = 0xB0B
PONG_BYTES = 8
WR_CTL, WR_PONG = 7001, 7002

DEFAULT_ITERATIONS = 6
DEFAULT_WARMUP = 2


@dataclass
class LatencyPoint:
    """One size's latency comparison (a point on Fig 4 or Fig 5)."""

    size: int
    rvma_ns: float
    rdma_ns: float

    @property
    def reduction_pct(self) -> float:
        """Paper's metric: % latency reduction from using RVMA."""
        return 100.0 * (1.0 - self.rvma_ns / self.rdma_ns)

    @property
    def speedup(self) -> float:
        return self.rdma_ns / self.rvma_ns


def _mean(samples: list[float], warmup: int) -> float:
    kept = samples[warmup:]
    return statistics.fmean(kept) if kept else float("nan")


def _build(
    testbed: Testbed,
    nic_type: str,
    routing: RoutingMode,
    fidelity: str,
    nic_cfg=None,
) -> Cluster:
    net = testbed.net.with_(routing=routing)
    if nic_cfg is None:
        nic_cfg = (
            testbed.rvma_nic_config() if nic_type == "rvma" else testbed.rdma_nic_config()
        )
    return Cluster.build(
        n_nodes=2, topology="star", nic_type=nic_type,
        fidelity=fidelity, net_config=net, nic_config=nic_cfg,
    )


# ------------------------------------------------------------------------ RVMA


@memoize_timing
def rvma_latency(
    testbed: Testbed,
    size: int,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    routing: RoutingMode = RoutingMode.ADAPTIVE,
    fidelity: str = "packet",
    wakeup=MWAIT,
    nic_cfg=None,
) -> float:
    """Mean one-way RVMA completed-put latency in ns.

    ``wakeup`` selects the receiver's notification mechanism (MWait,
    cache-line polling, or CQ-style polling — ablation A2); ``nic_cfg``
    overrides the RVMA NIC sizing (LUT/counter ablation A1)."""
    cl = _build(testbed, "rvma", routing, fidelity, nic_cfg)
    api0 = RvmaApi(cl.node(0), testbed.rvma_sw_overhead)
    api1 = RvmaApi(cl.node(1), testbed.rvma_sw_overhead)
    total = iterations + warmup
    starts: list[float] = []
    samples: list[float] = []

    def receiver() -> Generator:
        win = yield from api1.init_window(PING_MAILBOX, epoch_threshold=size)
        for _ in range(total):
            yield from api1.post_buffer(win, size=size)
        for i in range(total):
            yield from api1.wait_completion(win, wakeup)
            samples.append(cl.sim.now - starts[i])
            op = yield from api1.put(0, PONG_MAILBOX, size=PONG_BYTES)
            yield op.local_done

    def sender() -> Generator:
        pong = yield from api0.init_window(PONG_MAILBOX, epoch_threshold=PONG_BYTES)
        for _ in range(total):
            yield from api0.post_buffer(pong, size=PONG_BYTES)
        yield 5000.0  # let the receiver arm its window first
        for _ in range(total):
            starts.append(cl.sim.now)
            yield from api0.put(1, PING_MAILBOX, size=size)
            yield from api0.wait_completion(pong, MWAIT)

    spawn(cl.sim, receiver(), "rvma-rx")
    spawn(cl.sim, sender(), "rvma-tx")
    cl.sim.run()
    if len(samples) != total:
        raise RuntimeError(f"rvma ping-pong incomplete: {len(samples)}/{total}")
    return _mean(samples, warmup)


# ------------------------------------------------------------------------ RDMA / Verbs


@memoize_timing
def rdma_verbs_latency(
    testbed: Testbed,
    size: int,
    completion: CompletionMode = CompletionMode.SEND_RECV,
    routing: RoutingMode = RoutingMode.ADAPTIVE,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    fidelity: str = "packet",
    allow_unsafe: bool = False,
) -> float:
    """Mean one-way RDMA completed-write latency over Verbs, in ns.

    ``SEND_RECV`` is the spec-compliant adaptive-network sequence
    (Fig 4's RDMA series); ``LAST_BYTE_POLL`` with static routing is the
    classic fast path RVMA is "comparable" to.
    """
    if completion is CompletionMode.WRITE_IMM and size > MAX_IMM_PAYLOAD:
        raise ValueError(
            f"write-with-immediate carries at most {MAX_IMM_PAYLOAD}B "
            f"(paper §I); got {size}"
        )
    cl = _build(testbed, "rdma", routing, fidelity)
    v0 = VerbsEndpoint(cl.node(0), testbed.verbs)
    v1 = VerbsEndpoint(cl.node(1), testbed.verbs)
    total = iterations + warmup
    starts: list[float] = []
    samples: list[float] = []
    payload = bytes(size) if completion is CompletionMode.LAST_BYTE_POLL else b""

    def server() -> Generator:
        landing, _region = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl.node(1).memory, 64, label="ctl")
        pong_src = HostBuffer.allocate(cl.node(1).memory, PONG_BYTES, label="pong")
        if completion is CompletionMode.SEND_RECV:
            yield from v1.post_recv(ctl, wr_id=WR_CTL, tag=WR_CTL)
        for i in range(total):
            if completion is CompletionMode.SEND_RECV:
                yield from v1.wait_cq(WR_CTL, CqKind.RECV)
                samples.append(cl.sim.now - starts[i])
                yield from v1.post_recv(ctl, wr_id=WR_CTL, tag=WR_CTL)
            elif completion is CompletionMode.WRITE_IMM:
                while True:  # skip unrelated CQEs (e.g. handshake sends)
                    entry = yield v1.nic.cq.wait()
                    yield v1.costs.poll_cq
                    if entry.kind is CqKind.WRITE_IMM:
                        break
                samples.append(cl.sim.now - starts[i])
            else:
                # Last-byte sentinel: iteration number modulo 251, never 0.
                yield v1.node.waiter.wait_for_byte(
                    landing.addr + size - 1, (i % 251) + 1, POLL
                )
                samples.append(cl.sim.now - starts[i])
            op = yield from v1.send(
                0, PONG_BYTES, b"", tag=WR_PONG, wr_id=WR_PONG, signaled=False
            )
            yield op.done

    def client() -> Generator:
        pong_buf = HostBuffer.allocate(cl.node(0).memory, 64, label="pong-rx")
        yield from v0.post_recv(pong_buf, wr_id=WR_PONG, tag=WR_PONG)
        hs = yield from client_request_region(v0, server=1, size=max(size, 64))
        for i in range(total):
            starts.append(cl.sim.now)
            if completion is CompletionMode.SEND_RECV:
                yield from v0.write_with_completion(
                    1, hs.region, size, b"", completion=completion, wr_id=WR_CTL
                )
            elif completion is CompletionMode.WRITE_IMM:
                yield v0.costs.post_send
                op = v0.nic.hw_write(
                    1, hs.region.addr, hs.region.rkey, size, imm=i, signaled=False
                )
                yield op.done
            else:
                data = bytearray(payload)
                data[-1] = (i % 251) + 1
                op = yield from v0.rdma_write(
                    1, hs.region, size, bytes(data), signaled=False
                )
                yield op.done
            yield from v0.wait_cq(WR_PONG, CqKind.RECV)
            yield from v0.post_recv(pong_buf, wr_id=WR_PONG, tag=WR_PONG)

    spawn(cl.sim, server(), "rdma-rx")
    spawn(cl.sim, client(), "rdma-tx")
    cl.sim.run()
    if len(samples) != total:
        raise RuntimeError(f"rdma ping-pong incomplete: {len(samples)}/{total}")
    return _mean(samples, warmup)


# ------------------------------------------------------------------------ RDMA / UCX


@memoize_timing
def rdma_ucx_latency(
    testbed: Testbed,
    size: int,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    routing: RoutingMode = RoutingMode.ADAPTIVE,
    fidelity: str = "packet",
    completion: CompletionMode = CompletionMode.SEND_RECV,
) -> float:
    """Mean one-way latency of the UCX RDMA sequence (Fig 5's series).

    ``SEND_RECV``: ucp_put_nbi + flush + tagged completion send (the
    adaptive-network-compliant sequence).  ``LAST_BYTE_POLL``: put only,
    receiver spins on the final byte (static routing fast path, used as
    Fig 6's static baseline)."""
    if completion is CompletionMode.LAST_BYTE_POLL and routing is not RoutingMode.STATIC:
        raise ValueError("last-byte polling requires static routing")
    cl = _build(testbed, "rdma", routing, fidelity)
    u0 = UcpEndpoint(cl.node(0), testbed.ucp)
    u1 = UcpEndpoint(cl.node(1), testbed.ucp)
    v0 = VerbsEndpoint(cl.node(0), testbed.verbs)  # handshake transport
    v1 = VerbsEndpoint(cl.node(1), testbed.verbs)
    total = iterations + warmup
    starts: list[float] = []
    samples: list[float] = []
    lastbyte = completion is CompletionMode.LAST_BYTE_POLL

    def server() -> Generator:
        landing, _region = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl.node(1).memory, 64, label="ctl")
        if not lastbyte:
            yield from u1.tag_recv_arm(ctl, tag=WR_CTL)
        for i in range(total):
            if lastbyte:
                yield v1.node.waiter.wait_for_byte(
                    landing.addr + size - 1, (i % 251) + 1, POLL
                )
                samples.append(cl.sim.now - starts[i])
            else:
                yield from u1.tag_recv_wait(tag=WR_CTL)
                samples.append(cl.sim.now - starts[i])
                yield from u1.tag_recv_arm(ctl, tag=WR_CTL)
            op = yield from u1.tag_send(0, PONG_BYTES, tag=WR_PONG)
            yield op.done

    def client() -> Generator:
        pong_buf = HostBuffer.allocate(cl.node(0).memory, 64, label="pong-rx")
        yield from u0.tag_recv_arm(pong_buf, tag=WR_PONG)
        hs = yield from client_request_region(v0, server=1, size=max(size, 64))
        for i in range(total):
            starts.append(cl.sim.now)
            if lastbyte:
                data = bytearray(size)
                data[-1] = (i % 251) + 1
                op = yield from u0.put_nbi(1, hs.region, size, bytes(data))
                yield op.done
            else:
                yield from u0.put_nbi(1, hs.region, size)
                yield from u0.flush()  # remote-completion fence
                op = yield from u0.tag_send(1, 1, tag=WR_CTL)
            yield from u0.tag_recv_wait(tag=WR_PONG)
            yield from u0.tag_recv_arm(pong_buf, tag=WR_PONG)

    spawn(cl.sim, server(), "ucx-rx")
    spawn(cl.sim, client(), "ucx-tx")
    cl.sim.run()
    if len(samples) != total:
        raise RuntimeError(f"ucx ping-pong incomplete: {len(samples)}/{total}")
    return _mean(samples, warmup)


# ------------------------------------------------------------------------ sweeps


def latency_sweep(
    testbed: Testbed,
    sizes: list[int],
    interface: str = "verbs",
    routing: RoutingMode = RoutingMode.ADAPTIVE,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    fidelity: str = "packet",
) -> list[LatencyPoint]:
    """Fig 4 (interface='verbs') / Fig 5 (interface='ucx') data series."""
    points = []
    for size in sizes:
        rvma = rvma_latency(testbed, size, iterations, warmup, routing, fidelity)
        if interface == "verbs":
            rdma = rdma_verbs_latency(
                testbed, size, CompletionMode.SEND_RECV, routing, iterations, warmup, fidelity
            )
        elif interface == "ucx":
            rdma = rdma_ucx_latency(testbed, size, iterations, warmup, routing, fidelity)
        else:
            raise ValueError(f"unknown interface {interface!r}")
        points.append(LatencyPoint(size=size, rvma_ns=rvma, rdma_ns=rdma))
    return points
