"""Property tests: every topology routes every pair validly."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.network.topology import Dragonfly, FatTree, HyperX, Torus3D


@given(
    a=st.integers(min_value=2, max_value=6),
    p=st.integers(min_value=1, max_value=4),
    h=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_dragonfly_routes_any_pair(a, p, h, data):
    topo = Dragonfly(a=a, p=p, h=h)
    src = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    ssw, dsw = topo.node_switch(src), topo.node_switch(dst)
    static = topo.static_path(ssw, dsw)
    topo.validate_path(static, ssw, dsw)
    assert len(static) <= topo.diameter() + 1
    for path in topo.candidate_paths(ssw, dsw):
        topo.validate_path(path, ssw, dsw)


@given(
    k=st.sampled_from([4, 6, 8]),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_fattree_routes_any_pair(k, data):
    topo = FatTree(k=k)
    src = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    ssw, dsw = topo.node_switch(src), topo.node_switch(dst)
    static = topo.static_path(ssw, dsw)
    topo.validate_path(static, ssw, dsw)
    assert len(static) <= 5
    cands = topo.candidate_paths(ssw, dsw)
    assert len({tuple(p) for p in cands}) == len(cands)  # no duplicates
    for path in cands:
        topo.validate_path(path, ssw, dsw)


@given(
    dims=st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=3),
    terminals=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_hyperx_routes_any_pair(dims, terminals, data):
    topo = HyperX(dims=tuple(dims), terminals=terminals)
    src = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    ssw, dsw = topo.node_switch(src), topo.node_switch(dst)
    static = topo.static_path(ssw, dsw)
    topo.validate_path(static, ssw, dsw)
    # Minimal HyperX path corrects each mismatched dimension once.
    mismatched = sum(
        1 for s, d in zip(topo.coords(ssw), topo.coords(dsw)) if s != d
    )
    assert len(static) - 1 == mismatched
    for path in topo.candidate_paths(ssw, dsw):
        topo.validate_path(path, ssw, dsw)
        assert len(path) - 1 == mismatched  # all candidates are minimal


@given(
    shape=st.tuples(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=6),
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_torus_routes_any_pair_within_diameter(shape, data):
    topo = Torus3D(shape=shape)
    src = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.n_nodes - 1))
    ssw, dsw = topo.node_switch(src), topo.node_switch(dst)
    static = topo.static_path(ssw, dsw)
    topo.validate_path(static, ssw, dsw)
    assert len(static) - 1 <= topo.diameter()
    # DOR takes the shortest ring direction per dimension: hop count is
    # exactly the sum of per-dimension ring distances.
    expect = sum(
        min((d - s) % n, (s - d) % n)
        for s, d, n in zip(topo.coords(ssw), topo.coords(dsw), shape)
    )
    assert len(static) - 1 == expect
