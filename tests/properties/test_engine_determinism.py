"""Determinism properties of the event engine.

The optimized scheduler (pooling, tuple payloads, buckets, compaction,
GC pausing) must be *invisible*: a fixed seed yields the identical
event order, timestamps and metrics every run, whether the heap is
drained by ``run()`` or single-stepped, and in both engine modes.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.motifs import Incast, RvmaProtocol
from repro.sim import Simulator

SEED = 0xD15EA5E


def _storm(sim: Simulator, log: list, n: int = 400) -> None:
    """A seeded storm mixing every scheduling API, including cancels."""
    rng = sim.rng.stream("storm")
    state = {"left": n}

    def fire(tag: str) -> None:
        log.append((sim.now, tag))
        if state["left"] <= 0:
            return
        state["left"] -= 1
        choice = int(rng.integers(0, 6))
        delay = float(int(rng.integers(0, 4)))
        if choice == 0:
            sim.post(delay, fire, "post")
        elif choice == 1:
            sim.schedule(delay, fire, "sched")
        elif choice == 2:
            sim.schedule(delay, fire, "prio", priority=-10)
        elif choice == 3:
            dead = sim.schedule(delay + 1.0, fire, "dead")
            dead.cancel()
            sim.post(delay, fire, "after-cancel")
        elif choice == 4:
            sim.post_batch(delay, [(fire, ("b0",)), (fire, ("b1",))])
        else:
            evs = sim.schedule_batch(delay, [(fire, ("sb0",)), (fire, ("sb1",))])
            evs[1].cancel()

    sim.post(0.0, fire, "seed")


def _run_storm(step: bool = False) -> tuple:
    sim = Simulator(seed=SEED)
    log: list = []
    _storm(sim, log)
    if step:
        while sim.step():
            pass
    else:
        sim.run()
    return log, sim.now, sim.events_executed, sim.pending_events


def test_same_seed_same_event_order(engine_mode):
    a = _run_storm()
    b = _run_storm()
    assert a == b


def test_run_vs_step_identical(engine_mode):
    drained = _run_storm(step=False)
    stepped = _run_storm(step=True)
    assert drained == stepped


def test_fast_vs_plain_identical():
    results = []
    for fast in (True, False):
        sim = Simulator(seed=SEED, fast=fast)
        log: list = []
        _storm(sim, log)
        sim.run()
        results.append((log, sim.now, sim.events_executed, sim.pending_events))
    assert results[0] == results[1]


def _run_incast() -> tuple:
    cl = Cluster.build(
        n_nodes=5, topology="star", nic_type="rvma", fidelity="packet", seed=SEED
    )
    res = Incast(cl, RvmaProtocol(), msgs_per_client=3, msg_bytes=8 * 1024).run()
    return res.messages, res.bytes_moved, res.elapsed, cl.sim.events_executed, cl.sim.now


def test_motif_metrics_deterministic(engine_mode):
    assert _run_incast() == _run_incast()


def test_motif_identical_across_engine_modes():
    """Fast mode must match plain on every *observable*: messages,
    bytes, elapsed time and final simulated clock.  Event counts are
    exempt — the vectorized packet fabric intentionally schedules one
    event per link-timestep instead of two per packet-hop, so fast mode
    executes fewer events for the same physics (the fabric conformance
    suite pins the full delivery/metric/span equivalence)."""
    import repro.sim.engine as engine

    saved = engine.DEFAULT_FAST
    try:
        engine.DEFAULT_FAST = True
        fast = _run_incast()
        engine.DEFAULT_FAST = False
        plain = _run_incast()
    finally:
        engine.DEFAULT_FAST = saved
    f_msgs, f_bytes, f_elapsed, f_events, f_now = fast
    p_msgs, p_bytes, p_elapsed, p_events, p_now = plain
    assert (f_msgs, f_bytes, f_elapsed, f_now) == (p_msgs, p_bytes, p_elapsed, p_now)
    assert f_events <= p_events


def test_trace_stream_deterministic(engine_mode):
    """With tracing on, the recorded trace stream is identical per seed."""

    def traced() -> list:
        cl = Cluster.build(
            n_nodes=5, topology="star", nic_type="rvma", fidelity="packet",
            seed=SEED, trace=True,
        )
        Incast(cl, RvmaProtocol(), msgs_per_client=2, msg_bytes=4 * 1024).run()
        return [
            (e.time, e.category, e.message, tuple(sorted(e.fields.items())))
            for e in cl.sim.tracer.entries
        ]

    first = traced()
    assert first, "expected a non-empty trace"
    assert first == traced()
