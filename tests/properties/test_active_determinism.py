"""Property tests: active-mailbox handlers vs the host-dispatch oracle.

Three invariants that must hold for *any* drawn workload:

* **scan conformance** — for any request stream and any transport
  chunking of it, every frame is answered exactly once: either served
  by the NIC scanner with bytes identical to the host-dispatch oracle,
  or left intact for the host sweep.  Nothing is double-served, nothing
  vanishes, and the tombstone rewrite never corrupts a neighbour frame;
* **backend invariance** — the client-visible outcome is independent of
  *how* the transport segments the stream.  The rvma / verbs / ucx
  backends differ exactly in their segmentation profiles, so driving
  the scanner with each backend's characteristic chunk sizes must yield
  the same answered-frame multiset (served sets may legally differ —
  straddling frames always fall through to the host);
* **engine/chaos invariance** — a live KV run with handlers armed
  returns byte-identical replies under the fast and plain engines, and
  identical to the active-off host-dispatch run, with or without
  ChaosSchedule link flaps.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core.api import RvmaApi
from repro.experiments.chaos import CHAOS_RELIABILITY
from repro.faults.chaos import ChaosSchedule
from repro.faults.injectors import FaultInjector
from repro.nic.active import ActiveBinding, ActiveRegistry, KvServeHandler
from repro.nic.rvma import RvmaNicConfig
from repro.services import KvClient, KvServer, KvServerConfig, ShardMap
from repro.services.wire import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    REQ_HEADER_BYTES,
    STATUS_HANDLER_FLAG,
    STATUS_OK,
    RequestDecoder,
    encode_reply,
    encode_request,
    peek_request_header,
)
from repro.sim import spawn

HOT = (b"hot-a", b"hot-b")
KEYS = (*HOT, b"cold-x", b"cold-y")
DEADLINE_NS = 80_000_000.0

# Characteristic stream segmentation per protocol backend: how large a
# contiguous piece of the request stream one completion hands the
# scanner.  This is the *only* thing the backend choice changes about
# the bytes the handler sees.
BACKEND_CHUNK = {"rvma": 4096, "verbs": 1024, "ucx": 256}


# ------------------------------------------------------------------ pure scanner


class _Counter:
    def __init__(self):
        self.value = 0

    def add(self, n=1):
        self.value += n


class _StubBuf:
    def __init__(self, data: bytes):
        self.raw = bytearray(data)
        self.buffer = self

    def read(self, off, n):
        return bytes(self.raw[off : off + n])

    def write(self, off, data):
        self.raw[off : off + len(data)] = data


class _StubNic:
    def __init__(self):
        self.counters = {}
        self.injected = []

    def stat(self, name):
        return self.counters.setdefault(name, _Counter())

    def inject(self, dst, size, header, data=b"", mode=None, after=0.0):
        self.injected.append(bytes(data))


def _scan(chunks, view):
    """Run the NIC scanner over *chunks*; returns (served, survivors)."""
    nic = _StubNic()
    reg = ActiveRegistry(nic)
    binding = ActiveBinding(mailbox=0x9, kv=KvServeHandler(hot_keys=HOT))
    binding.kv_state.view.update(view)
    reg.bindings[0x9] = binding
    swept = []
    for chunk in chunks:
        buf = _StubBuf(chunk)
        reg._scan_and_serve(binding, buf, len(chunk), [], 0.0)
        swept.append(bytes(buf.raw))
    # The host sweep decodes what the scanner left behind (OP_SERVED
    # tombstones skip silently, exactly like KvServer's decoder).
    dec = RequestDecoder()
    survivors = []
    for chunk in swept:
        survivors.extend(dec.feed(chunk))
    return nic.injected, survivors


def _stream_oracle(frames, starts, bounds, view):
    """Host model of the scan in stream order.

    Returns (expected served replies, expected survivor req_ids).  A
    GET serves iff its key is hot, present in the view, has seen no
    earlier write frame, and the frame does not straddle a chunk
    boundary; everything else survives for the host sweep.
    """
    dirty: set[bytes] = set()
    served, survive = [], []
    for f, s in zip(frames, starts):
        op, _t, _c, req_id, klen, _v = peek_request_header(f)
        key = f[REQ_HEADER_BYTES : REQ_HEADER_BYTES + klen]
        whole = not any(s < b < s + len(f) for b in bounds)
        if op == OP_GET and key in HOT and key in view and key not in dirty and whole:
            served.append(encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, req_id, view[key]))
        else:
            survive.append(req_id)
        if op in (OP_PUT, OP_DELETE) and key in HOT:
            dirty.add(key)
    return served, survive


def _split(stream: bytes, cut_points: list[int]) -> list[bytes]:
    cuts = sorted({c % (len(stream) + 1) for c in cut_points} - {0, len(stream)})
    chunks, prev = [], 0
    for c in cuts:
        chunks.append(stream[prev:c])
        prev = c
    chunks.append(stream[prev:])
    return [c for c in chunks if c]


_frame_st = st.tuples(
    st.sampled_from([OP_GET, OP_GET, OP_GET, OP_PUT, OP_DELETE]),  # GET-heavy
    st.sampled_from(KEYS),
    st.binary(min_size=0, max_size=24),
)


@given(
    frames=st.lists(_frame_st, min_size=1, max_size=12),
    cut_points=st.lists(st.integers(min_value=1, max_value=10_000), max_size=6),
    hot_value=st.binary(min_size=1, max_size=32),
)
@settings(max_examples=120, deadline=None)
def test_scan_answers_every_frame_exactly_once(frames, cut_points, hot_value):
    view = {k: hot_value for k in HOT}
    encoded = [
        encode_request(op, 0x0101, i + 1, key, value if op == OP_PUT else b"")
        for i, (op, key, value) in enumerate(frames)
    ]
    stream = b"".join(encoded)
    chunks = _split(stream, cut_points)
    starts, pos = [], 0
    for f in encoded:
        starts.append(pos)
        pos += len(f)
    bounds = set()
    acc = 0
    for c in chunks:
        acc += len(c)
        bounds.add(acc)
    served, survivors = _scan(chunks, view)
    expect_served, expect_survive = _stream_oracle(encoded, starts, bounds, view)
    # Byte-identical serves, in stream order.
    assert served == expect_served
    # Everything else survives for the host, exactly once, in order.
    assert [r.req_id for r in survivors] == expect_survive
    # Nothing lost, nothing duplicated.
    assert len(served) + len(survivors) == len(encoded)


@given(
    frames=st.lists(_frame_st, min_size=1, max_size=10),
    hot_value=st.binary(min_size=1, max_size=16),
)
@settings(max_examples=60, deadline=None)
def test_answered_multiset_invariant_across_backends(frames, hot_value):
    """rvma/verbs/ucx segment the same stream differently; the set of
    answered requests (served + survivors) must not depend on it."""
    view = {k: hot_value for k in HOT}
    encoded = [
        encode_request(op, 0x0101, i + 1, key, value if op == OP_PUT else b"")
        for i, (op, key, value) in enumerate(frames)
    ]
    stream = b"".join(encoded)
    served_by, answered_by = {}, {}
    for backend, chunk_size in BACKEND_CHUNK.items():
        chunks = [stream[i : i + chunk_size] for i in range(0, len(stream), chunk_size)]
        served, survivors = _scan(chunks, view)
        # Answered exactly once per frame on every backend.
        assert len(served) + len(survivors) == len(encoded), backend
        served_by[backend] = served
        answered_by[backend] = len(served) + len(survivors)
        # Determinism: the same backend segmentation replays identically.
        served2, survivors2 = _scan(
            [stream[i : i + chunk_size] for i in range(0, len(stream), chunk_size)], view
        )
        assert served2 == served and len(survivors2) == len(survivors)
    # 256 | 1024 | 4096: finer segmentation has strictly more chunk
    # boundaries, so it can only move frames from "served" to "host"
    # (straddlers), never change a reply's bytes — each backend's serve
    # sequence must be a subsequence of the coarser backend's.
    def is_subseq(small, big):
        it = iter(big)
        return all(any(x == y for y in it) for x in small)

    assert is_subseq(served_by["verbs"], served_by["rvma"])
    assert is_subseq(served_by["ucx"], served_by["verbs"])


# ------------------------------------------------------------------ live KV


def _live_run(fast: bool, active: bool, seed: int, script, drop_prob: float):
    """One live client/server run; returns (replies, store, served)."""
    import repro.sim.engine as engine

    prev = engine.DEFAULT_FAST
    engine.DEFAULT_FAST = fast
    try:
        cluster = Cluster.build(
            n_nodes=2, topology="star", nic_type="rvma", fidelity="flow",
            seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
        )
        if drop_prob > 0.0:
            ChaosSchedule.generate(
                cluster, horizon_ns=200_000.0, n_events=2, max_window_ns=20_000.0,
                drop_prob=drop_prob, kinds=("link_flap",),
            ).apply(FaultInjector(cluster))
        shard_map = ShardMap([0], shards_per_node=2)
        cfg = KvServerConfig(hot_keys=HOT if active else ())
        server = KvServer(cluster.nodes[0], shard_map, config=cfg).start()
        client = KvClient(RvmaApi(cluster.nodes[1]), shard_map, index=0)
        out = {}

        def driver():
            yield from client.open()
            replies = []
            for kind, key_i, fill in script:
                key = KEYS[key_i % len(KEYS)]
                if kind == "put":
                    status = yield from client.put(key, bytes([fill]) * (1 + fill % 20))
                    replies.append((kind, status, b""))
                elif kind == "delete":
                    status = yield from client.delete(key)
                    replies.append((kind, status, b""))
                else:
                    status, value = yield from client.get(key)
                    replies.append((kind, status, value))
            out["replies"] = replies
            server.stop()

        proc = spawn(cluster.sim, driver(), "driver")
        cluster.sim.run(until=DEADLINE_NS)
        assert proc.finished, "driver stalled"
        served = cluster.nodes[0].nic.stat("active.served").value
        store = {k: dict(v) for k, v in server.stores.items()}
        return out["replies"], store, served
    finally:
        engine.DEFAULT_FAST = prev


@given(
    seed=st.integers(min_value=1, max_value=10_000),
    script=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "get", "delete"]),
            st.integers(min_value=0, max_value=len(KEYS) - 1),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=4, max_size=12,
    ),
    drop_prob=st.sampled_from([0.0, 0.05]),
)
@settings(max_examples=8, deadline=None)
def test_handler_serves_identically_across_engines_and_chaos(seed, script, drop_prob):
    """active(fast) == active(plain) == host-dispatch oracle, replies
    and final stores byte-for-byte, chaos or not."""
    on_fast = _live_run(True, True, seed, script, drop_prob)
    on_plain = _live_run(False, True, seed, script, drop_prob)
    off_fast = _live_run(True, False, seed, script, drop_prob)
    assert on_fast[0] == on_plain[0], "fast vs plain replies diverged"
    assert on_fast[1] == on_plain[1], "fast vs plain stores diverged"
    assert on_fast[0] == off_fast[0], "active vs host-dispatch replies diverged"
    assert on_fast[1] == off_fast[1], "active vs host-dispatch stores diverged"
    assert off_fast[2] == 0  # the oracle run never fires a handler
