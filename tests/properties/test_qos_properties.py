"""Property tests: the weighted-fair scheduler's two contracts.

For *any* seeded arrival pattern and sweep-budget sequence, the deficit
round-robin scheduler must be

* **work conserving** — ``take`` never returns empty while items are
  pending (a head item costlier than the quantum accrues deficit inside
  the call, it does not wedge the ring); and
* **boundedly unfair** — while two equal-weight tenants are both
  continuously backlogged, their served-cost difference never exceeds
  one ring visit of credit plus one max-cost item, for *any* sweep
  budget sequence.  This relies on ``take`` resuming a budget-truncated
  visit at the ring head without a fresh grant; rotating the truncated
  tenant to the tail instead lets an adversarial budget sequence grow
  the skew without bound (a bug this test originally caught).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.services.qos import DeficitRoundRobin

_COSTS = st.lists(st.integers(min_value=1, max_value=512), min_size=20, max_size=60)


@given(
    costs_a=_COSTS,
    costs_b=_COSTS,
    budgets=st.lists(
        st.integers(min_value=1, max_value=8192), min_size=3, max_size=25
    ),
    quantum=st.sampled_from([64, 256, 1024]),
)
@settings(max_examples=120, deadline=None)
def test_drr_work_conservation_and_bounded_unfairness(
    costs_a, costs_b, budgets, quantum
):
    drr = DeficitRoundRobin(quantum=quantum)
    pending = {1: len(costs_a), 2: len(costs_b)}
    for i, cost in enumerate(costs_a):
        drr.push(1, (1, i), cost=cost, weight=1.0)
    for i, cost in enumerate(costs_b):
        drr.push(2, (2, i), cost=cost, weight=1.0)
    max_cost = max(costs_a + costs_b)

    for budget in budgets:
        if drr.pending_items == 0:
            break
        served = drr.take(budget=budget)
        # Work conservation: pending items means forward progress.
        assert served, "take() returned empty with a nonempty backlog"
        for tenant, _ in served:
            pending[tenant] -= 1
        if min(pending.values()) > 0:
            # Both tenants were continuously backlogged so far: equal
            # weights must keep served bytes within one visit's credit
            # (quantum * weight) plus one head item of slack.
            skew = abs(drr.served_cost.get(1, 0) - drr.served_cost.get(2, 0))
            assert skew <= quantum + max_cost, (
                f"unfairness {skew} exceeds quantum+max_cost "
                f"{quantum + max_cost}"
            )


@given(
    arrivals=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),    # tenant
            st.integers(min_value=1, max_value=512),  # cost
        ),
        min_size=1,
        max_size=80,
    ),
    quantum=st.sampled_from([64, 256]),
)
@settings(max_examples=120, deadline=None)
def test_drr_drains_everything_in_per_tenant_fifo_order(arrivals, quantum):
    drr = DeficitRoundRobin(quantum=quantum)
    for i, (tenant, cost) in enumerate(arrivals):
        drr.push(tenant, (tenant, i), cost=cost, weight=float(tenant))
    served = []
    while drr.pending_items:
        batch = drr.take(budget=quantum)
        assert batch  # work conservation under a tiny budget
        served.extend(batch)
    assert (drr.pending_items, drr.pending_cost) == (0, 0)
    assert sorted(served) == sorted((t, i) for i, (t, _c) in enumerate(arrivals))
    # Within one tenant, service preserves arrival (FIFO) order.
    for tenant in {t for t, _ in arrivals}:
        seq = [i for t, i in served if t == tenant]
        assert seq == sorted(seq)
    # Lifetime served-cost accounting matches what was pushed.
    assert sum(drr.served_cost.values()) == sum(c for _t, c in arrivals)
