"""Property tests: the KV service under fault schedules.

Two invariants that must hold for *any* drawn workload and flap
schedule:

* **per-key linearizability** — each key has a single writer (keys are
  partitioned per client), so a GET must return exactly the latest
  acknowledged PUT (or NOT_FOUND after a DELETE), chaos or not;
* **stream integrity** — the server-observed byte stream of a
  receiver-managed request stream is exactly the concatenation of the
  client's writes, even when link flaps force ARQ retransmission (the
  transport's duplicate suppression is what keeps replayed puts from
  double-landing).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import RvmaApi, StreamClient, StreamServer
from repro.experiments.chaos import CHAOS_RELIABILITY
from repro.faults.chaos import ChaosSchedule
from repro.faults.injectors import FaultInjector
from repro.nic.rvma import RvmaNicConfig
from repro.services import KvClient, KvServer, ShardMap
from repro.services.wire import STATUS_NOT_FOUND, STATUS_OK
from repro.sim import spawn

DEADLINE_NS = 80_000_000.0


def _chaos_cluster(n_nodes: int, seed: int, drop_prob: float):
    cluster = Cluster.build(
        n_nodes=n_nodes, topology="star", nic_type="rvma", fidelity="flow",
        seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    schedule = ChaosSchedule.generate(
        cluster, horizon_ns=300_000.0, n_events=2, max_window_ns=30_000.0,
        drop_prob=drop_prob, kinds=("link_flap",),
    )
    schedule.apply(FaultInjector(cluster))
    return cluster


@given(
    seed=st.integers(min_value=1, max_value=10_000),
    schedules=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(min_value=0, max_value=3),   # key index
                st.integers(min_value=0, max_value=255), # value fill
            ),
            min_size=3, max_size=10,
        ),
        min_size=1, max_size=2,  # clients
    ),
    drop_prob=st.sampled_from([0.0, 0.05]),
)
@settings(max_examples=12, deadline=None)
def test_kv_gets_are_linearizable_per_key(seed, schedules, drop_prob):
    """GET returns the latest acked PUT for its key, under link flaps."""
    n_clients = len(schedules)
    cluster = _chaos_cluster(1 + n_clients, seed, drop_prob)
    shard_map = ShardMap([0], shards_per_node=2)
    server = KvServer(cluster.nodes[0], shard_map).start()
    failures: list[str] = []

    def client_proc(rank: int, schedule):
        client = KvClient(RvmaApi(cluster.nodes[1 + rank]), shard_map, index=rank)
        yield from client.open()
        model: dict[bytes, bytes] = {}
        for step, (kind, key_i, fill) in enumerate(schedule):
            # Keys partitioned per client: rank owns its own namespace,
            # so the local model is the exact linearization.
            key = b"c%d-k%d" % (rank, key_i)
            if kind == "put":
                value = bytes([fill]) * (1 + fill % 24)
                status = yield from client.put(key, value)
                if status != STATUS_OK:
                    failures.append(f"rank{rank} step{step}: put -> {status}")
                else:
                    model[key] = value
            elif kind == "delete":
                status = yield from client.delete(key)
                want = STATUS_OK if key in model else STATUS_NOT_FOUND
                if status != want:
                    failures.append(f"rank{rank} step{step}: delete -> {status} want {want}")
                model.pop(key, None)
            else:
                status, value = yield from client.get(key)
                if key in model:
                    if (status, value) != (STATUS_OK, model[key]):
                        failures.append(
                            f"rank{rank} step{step}: get {key!r} -> "
                            f"({status}, {value!r}) want {model[key]!r}"
                        )
                elif status != STATUS_NOT_FOUND:
                    failures.append(f"rank{rank} step{step}: ghost get -> {status}")

    procs = [
        spawn(cluster.sim, client_proc(rank, schedule), f"kv-client-{rank}")
        for rank, schedule in enumerate(schedules)
    ]

    def stopper():
        yield from _await_all(procs)
        server.stop()

    def _await_all(ps):
        from repro.sim.process import AllOf

        yield AllOf([p.done_future for p in ps])

    stop = spawn(cluster.sim, stopper(), "stopper")
    cluster.sim.run(until=DEADLINE_NS)
    assert all(p.finished for p in procs + [stop]), "workload stalled under chaos"
    assert not failures, failures
    counters = cluster.sim.stats.counters()
    assert counters.get("transport.gave_up", 0) == 0
    assert counters.get("nic.rvma.puts_lost", 0) == 0


@given(
    seed=st.integers(min_value=1, max_value=10_000),
    chunk_size=st.integers(min_value=16, max_value=64),
    n_chunks=st.integers(min_value=2, max_value=6),
    cuts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=6),
    drop_prob=st.sampled_from([0.0, 0.05]),
)
@settings(max_examples=12, deadline=None)
def test_request_stream_integrity_under_flaps(seed, chunk_size, n_chunks, cuts, drop_prob):
    """Server-observed stream bytes == concatenation of client writes,
    with ARQ retransmission (and its duplicate suppression) in the path."""
    total = chunk_size * n_chunks
    stream = bytes((i * 193 + seed) % 256 for i in range(total))
    points = sorted({c % (total + 1) for c in cuts} | {0, total})
    pieces = [stream[a:b] for a, b in zip(points, points[1:]) if b > a]

    cluster = _chaos_cluster(2, seed, drop_prob)
    server = StreamServer(RvmaApi(cluster.nodes[0]), 0x5EED, chunk_size, n_chunks + 2)
    client = StreamClient(RvmaApi(cluster.nodes[1]), 0, 0x5EED)
    received: list[bytes] = []

    def server_proc():
        yield from server.open()
        for _ in range(n_chunks):
            chunk = yield from server.recv()
            received.append(chunk)

    def client_proc():
        yield 2000.0
        for piece in pieces:
            op = yield from client.send(piece)
            yield op.local_done

    sp = spawn(cluster.sim, server_proc(), "srv")
    cp = spawn(cluster.sim, client_proc(), "cli")
    cluster.sim.run(until=DEADLINE_NS)
    assert sp.finished and cp.finished, "stream stalled under chaos"
    assert b"".join(received) == stream
    assert all(len(c) == chunk_size for c in received)
    counters = cluster.sim.stats.counters()
    assert counters.get("transport.gave_up", 0) == 0
