"""Property tests: receiver-managed streaming reassembly.

Any partition of a byte stream into client writes must reassemble into
identical chunk sequences at the server — the §IV-B sockets-semantics
invariant.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import RvmaApi, StreamClient, StreamServer
from repro.network import NetworkConfig, RoutingMode
from repro.sim import spawn


def _partition(total: int, cuts: list[int]) -> list[tuple[int, int]]:
    points = sorted({c % (total + 1) for c in cuts} | {0, total})
    return [(a, b) for a, b in zip(points, points[1:]) if b > a]


@given(
    chunk_size=st.integers(min_value=4, max_value=64),
    n_chunks=st.integers(min_value=1, max_value=4),
    cuts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=8),
    tail=st.integers(min_value=0, max_value=63),
)
@settings(max_examples=25, deadline=None)
def test_any_write_partition_reassembles_stream(chunk_size, n_chunks, cuts, tail):
    total = chunk_size * n_chunks + (tail % chunk_size)
    stream = bytes((i * 197 + 13) % 256 for i in range(total))
    pieces = [stream[a:b] for a, b in _partition(total, cuts)]

    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )
    server = StreamServer(RvmaApi(cl.node(1)), 0xF00D, chunk_size, n_chunks + 2)
    client = StreamClient(RvmaApi(cl.node(0)), 1, 0xF00D)
    received: list[bytes] = []

    def server_proc():
        yield from server.open()
        for _ in range(total // chunk_size):
            chunk = yield from server.recv()
            received.append(chunk)
        if total % chunk_size:
            # Let the tail bytes land before surfacing the partial chunk
            # (flush is a point-in-time snapshot of what has arrived).
            yield 30_000.0
            yield from server.flush()
            info = yield from server.api.wait_completion(server.win)
            received.append(info.read_data())

    def client_proc():
        yield 3000.0
        for piece in pieces:
            op = yield from client.send(piece)
            yield op.local_done
        # Let in-flight bytes land before the server flushes the tail.
        yield 50_000.0

    sp = spawn(cl.sim, server_proc(), "srv")
    cp = spawn(cl.sim, client_proc(), "cli")
    cl.sim.run()
    assert sp.finished and cp.finished
    assert b"".join(received) == stream
    full = received[:-1] if total % chunk_size else received
    assert all(len(c) == chunk_size for c in full)
