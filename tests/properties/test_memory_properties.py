"""Property tests: memory substrate and statistics invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.memory import MemoryFault, NodeMemory
from repro.sim.stats import Summary
from repro.units import serialization_ns


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),  # offset
            st.binary(min_size=1, max_size=64),  # data
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=150, deadline=None)
def test_memory_behaves_like_reference_bytearray(writes):
    """NodeMemory must agree with a plain bytearray under any write
    sequence (the oracle test for the placement substrate)."""
    mem = NodeMemory()
    alloc = mem.alloc(512)
    oracle = bytearray(512)
    for off, data in writes:
        mem.write(alloc.base + off, data)  # max offset+len = 255+64 < 512
        oracle[off : off + len(data)] = data
    assert mem.read(alloc.base, 512) == bytes(oracle)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=40)
)
@settings(max_examples=100, deadline=None)
def test_allocations_never_overlap(sizes):
    mem = NodeMemory()
    allocs = [mem.alloc(s) for s in sizes]
    spans = sorted((a.base, a.end) for a in allocs)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=200))
@settings(max_examples=150, deadline=None)
def test_welford_summary_matches_numpy(data):
    s = Summary("x")
    for x in data:
        s.add(x)
    assert s.mean == pytest.approx(float(np.mean(data)), rel=1e-9, abs=1e-6)
    assert s.stddev == pytest.approx(float(np.std(data, ddof=1)), rel=1e-6, abs=1e-6)
    assert s.min == min(data) and s.max == max(data)


@given(
    size=st.integers(min_value=0, max_value=10**9),
    bw=st.floats(min_value=0.001, max_value=1000.0),
)
@settings(max_examples=100, deadline=None)
def test_serialization_time_nonnegative_and_linear(size, bw):
    t = serialization_ns(size, bw)
    assert t >= 0.0
    assert serialization_ns(2 * size, bw) == pytest.approx(2 * t, abs=1e-6)


@given(
    value=st.integers(min_value=0, max_value=2**64 - 1),
)
@settings(max_examples=100, deadline=None)
def test_u64_roundtrip_any_value(value):
    mem = NodeMemory()
    a = mem.alloc(8)
    mem.write_u64(a.base, value)
    assert mem.read_u64(a.base) == value
