"""Property tests: RVMA placement and completion invariants.

The paper's core correctness claim: because placement is offset-steered
and completion is threshold-counted, *any* packet arrival order yields
an identical final buffer, and completion fires exactly when the
threshold is met — never before.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.buffer import HostBuffer, PostedBuffer
from repro.memory.memory import NodeMemory
from repro.nic.lut import EpochType, MailboxLUT


def _chunks_strategy():
    """A message split into chunks (offset, size) covering [0, size)."""
    return st.integers(min_value=1, max_value=40).flatmap(
        lambda n_chunks: st.integers(min_value=n_chunks, max_value=512).map(
            lambda total: (total, n_chunks)
        )
    )


def _split(total: int, n_chunks: int) -> list[tuple[int, int]]:
    base = total // n_chunks
    chunks = []
    off = 0
    for i in range(n_chunks):
        size = base + (1 if i < total % n_chunks else 0)
        if size:
            chunks.append((off, size))
            off += size
    return chunks


class _MiniCompletionUnit:
    """Direct harness over the LUT + counting logic (no event loop), so
    hypothesis can hammer thousands of orderings quickly."""

    def __init__(self, total: int, threshold_type: EpochType, threshold: int) -> None:
        self.mem = NodeMemory()
        self.lut = MailboxLUT()
        self.entry = self.lut.init_entry(0x1, threshold_type)
        buf = HostBuffer.allocate(self.mem, total)
        self.posted = PostedBuffer(
            buffer=buf, notification_addr=0, length_addr=0, threshold=threshold
        )
        self.lut.post(self.entry, self.posted)
        self.completed_at_chunk: int | None = None

    def arrive(self, index: int, off: int, data: bytes) -> None:
        buf = self.entry.active
        assert buf is self.posted, "buffer retired while chunks still arriving"
        buf.buffer.write(off, data)
        buf.bytes_received = max(buf.bytes_received, off + len(data))
        if self.entry.threshold_type is EpochType.EPOCH_BYTES:
            buf.counter += len(data)
        else:
            buf.counter += 1
        if buf.counter >= buf.threshold and self.completed_at_chunk is None:
            self.completed_at_chunk = index
            self.lut.retire_active(self.entry)


@given(
    params=_chunks_strategy(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_any_arrival_order_reconstructs_payload_bytes(params, seed):
    import random

    total, n_chunks = params
    chunks = _split(total, n_chunks)
    payload = bytes((i * 131 + 7) % 256 for i in range(total))
    order = list(range(len(chunks)))
    random.Random(seed).shuffle(order)

    unit = _MiniCompletionUnit(total, EpochType.EPOCH_BYTES, total)
    for rank, idx in enumerate(order):
        off, size = chunks[idx]
        unit.arrive(rank, off, payload[off : off + size])

    # Completion fired exactly at the LAST chunk, never earlier.
    assert unit.completed_at_chunk == len(chunks) - 1
    # And the reconstructed buffer is byte-exact regardless of order.
    assert unit.posted.buffer.contents() == payload
    assert unit.posted.bytes_received == total


@given(
    params=_chunks_strategy(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_ops_threshold_fires_exactly_at_nth_operation(params, seed):
    import random

    total, n_chunks = params
    chunks = _split(total, n_chunks)
    order = list(range(len(chunks)))
    random.Random(seed).shuffle(order)

    unit = _MiniCompletionUnit(total, EpochType.EPOCH_OPS, len(chunks))
    for rank, idx in enumerate(order):
        off, size = chunks[idx]
        unit.arrive(rank, off, b"\xaa" * size)
    assert unit.completed_at_chunk == len(chunks) - 1


@given(
    total=st.integers(min_value=2, max_value=512),
    arrived_fraction=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=100, deadline=None)
def test_partial_arrival_never_completes(total, arrived_fraction):
    arrived = max(1, min(total - 1, int(total * arrived_fraction)))
    unit = _MiniCompletionUnit(total, EpochType.EPOCH_BYTES, total)
    unit.arrive(0, 0, b"\x11" * arrived)
    assert unit.completed_at_chunk is None
    assert unit.entry.epoch == 0


@given(n_epochs=st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_epoch_counter_is_monotone_and_dense(n_epochs):
    mem = NodeMemory()
    lut = MailboxLUT(retain_epochs=64)
    entry = lut.init_entry(0x2, EpochType.EPOCH_BYTES)
    seen = []
    for _ in range(n_epochs):
        buf = HostBuffer.allocate(mem, 8)
        lut.post(entry, PostedBuffer(buffer=buf, notification_addr=0,
                                     length_addr=0, threshold=8))
        record = lut.retire_active(entry)
        seen.append(record.epoch)
    assert seen == list(range(n_epochs))
    assert entry.epoch == n_epochs
