"""Property tests: the retransmission protocol is loss-transparent.

For *any* adversarial drop schedule that stays below the retry budget
(each message's first k transmission attempts eaten, k chosen per
message), the bytes placed at the target are identical to a fault-free
run of the same seed — retransmission is invisible above the transport.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.nic.headers import SeqHeader
from repro.nic.rvma import RvmaNicConfig
from repro.reliability import ReliabilityConfig
from repro.sim import spawn

MAILBOX = 0x7A
MSG_BYTES = 512


def _run(drops_per_seq, seed, faulty):
    """One producer/consumer exchange; returns the placed buffer bytes.

    ``drops_per_seq[i]`` eats the first that-many transmission attempts
    of sequence number ``i + 1`` (the envelope's ``attempt`` counter
    makes the schedule deterministic and exact).
    """
    n_puts = len(drops_per_seq)
    total = n_puts * MSG_BYTES
    cfg = ReliabilityConfig(retransmit_timeout=4_000.0, max_retries=8)
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow", seed=seed,
        nic_config=RvmaNicConfig(reliability=cfg),
    )
    if faulty:

        def eat_scheduled_attempts(d):
            h = d.message.header
            return (
                isinstance(h, SeqHeader)
                and 1 <= h.seq <= n_puts
                and h.attempt < drops_per_seq[h.seq - 1]
            )

        cl.fabric.fault_filter = eat_scheduled_attempts

    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    placed = {}

    def consumer():
        win = yield from api1.init_window(MAILBOX, epoch_threshold=total)
        record = yield from api1.post_buffer(win, size=total)
        info = yield from api1.wait_completion(win)
        assert info.length == total
        placed["data"] = record.buffer.read()

    def producer():
        ops = []
        for i in range(n_puts):
            # Offset-steered placement: bytes land at i*MSG_BYTES no
            # matter the arrival order, so the comparison is exact.
            payload = bytes((seed + i * 37 + j) % 256 for j in range(MSG_BYTES))
            op = yield from api0.put(
                1, MAILBOX, data=payload, offset=i * MSG_BYTES
            )
            ops.append(op)
        for op in ops:
            yield op.local_done

    cp = spawn(cl.sim, consumer(), "consumer")
    pp = spawn(cl.sim, producer(), "producer")
    cl.sim.run()
    assert cp.finished and pp.finished, "run deadlocked under drop schedule"
    stats = cl.sim.stats
    assert stats.counter("reliability.rel_gave_up").value == 0
    assert stats.counter("rvma1.puts_lost").value == 0
    if faulty:
        assert (
            stats.counter("reliability.rel_retransmits").value
            >= sum(drops_per_seq)
        )
    return placed["data"]


@given(
    drops_per_seq=st.lists(
        st.integers(min_value=0, max_value=6), min_size=1, max_size=6
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_any_drop_schedule_below_budget_places_identically(drops_per_seq, seed):
    faulty = _run(drops_per_seq, seed, faulty=True)
    clean = _run(drops_per_seq, seed, faulty=False)
    assert faulty == clean
