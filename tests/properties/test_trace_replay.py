"""Property tests: the record→replay contract and the transform algebra.

Three families of invariants, for *any* drawn workload shape:

* **record→replay determinism** — a trace recorded from a live run
  replays to byte-identical op-outcome streams and wall-scrubbed
  RunReports under the fast and plain engines (same trace + same seed
  ⇒ same everything the client can observe);
* **backend invariance of the offered frames** — replaying a trace's
  op stream as raw request frames through the rvma / verbs / ucx
  protocol stacks delivers byte-identical streams and counts: the
  offered load really is protocol-independent;
* **transform laws** — ``time_scale(1.0)`` is an identity on the
  trace_id, and transform composition is associative on trace_ids
  (transforms are pure functions of the row stream).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.scenarios.runner import engine_mode
from repro.services import WorkloadConfig
from repro.workloads import (
    Trace,
    TraceRow,
    amplify_bursts,
    compose,
    diurnal_ramp,
    inject_flash_crowd,
    tenant_remap,
    time_scale,
)


def _record(seed: int, n_ops: int, mode: str) -> Trace:
    from repro.experiments.trace_replay import record_trace

    trace, _stats = record_trace(
        seed=seed,
        workload=WorkloadConfig(
            n_ops=n_ops, n_keys=16, value_bytes=32, zipf_s=0.9,
            mode=mode, mean_interarrival_ns=3000.0, rng_stream="kv-trace-prop",
        ),
        client_tenants=(0, 0),
    )
    return trace


# -------------------------------------------------------- record → replay


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=50),
    n_ops=st.integers(min_value=12, max_value=40),
    mode=st.sampled_from(["open", "closed"]),
)
def test_record_replay_deterministic_across_engines(seed, n_ops, mode):
    from repro.experiments.trace_replay import replay_trace

    trace = _record(seed, n_ops, mode)
    digests = []
    reports = []
    for engine in ("fast", "plain", "fast"):
        with engine_mode(engine):
            cell = replay_trace(trace, seed=seed, observe=True)
        assert cell.invariants_ok, (engine, cell.error, cell.safety_failures)
        digests.append(cell.outcome_digest)
        reports.append(json.dumps(cell.report, sort_keys=True))
    # Same trace + same seed ⇒ byte-identical outcomes and scrubbed
    # reports, and the fast/plain engines agree with each other.
    assert len(set(digests)) == 1
    assert len(set(reports)) == 1


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=1, max_value=50))
def test_replay_frames_identical_across_backends(seed):
    from repro.experiments.trace_replay import replay_trace_frames

    trace = _record(seed, 24, "open")
    results = {}
    for backend in ("rvma", "verbs", "ucx"):
        delivered, counts, stalled = replay_trace_frames(trace, backend, seed=seed)
        assert not stalled, backend
        results[backend] = (delivered, counts)
    base = results["rvma"]
    assert results["verbs"] == base
    assert results["ucx"] == base


# ------------------------------------------------------------ transform laws


def _rows(data):
    # data: list of (gap, tenant&client pick, op pick, key pick, size)
    ops = ("get", "put", "delete", "scan")
    rows = []
    t = 0.0
    for gap, who, op_i, key_i, size in data:
        t += gap
        op = ops[op_i]
        rows.append(TraceRow(
            timestamp_ns=t, tenant=who % 3, client=100 + (who % 3),
            op=op, key=f"k{key_i}", value_size=size if op == "put" else 0,
        ))
    return rows


ROWS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=64),
    ),
    min_size=1, max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(data=ROWS)
def test_time_scale_unit_is_identity(data):
    trace = Trace.from_rows(_rows(data), provenance={"seed": 0})
    assert time_scale(1.0)(trace).trace_id == trace.trace_id


@settings(max_examples=100, deadline=None)
@given(
    data=ROWS,
    factor=st.sampled_from([0.5, 2.0, 3.0]),
    amp=st.integers(min_value=1, max_value=4),
)
def test_compose_associative_on_trace_ids(data, factor, amp):
    trace = Trace.from_rows(_rows(data), provenance={"seed": 0})
    f = time_scale(factor)
    g = amplify_bursts(amp)
    h = diurnal_ramp(period_ns=50_000.0, amplitude=0.5)
    left = compose(compose(f, g), h)(trace)
    right = compose(f, compose(g, h))(trace)
    flat = compose(f, g, h)(trace)
    assert left.trace_id == right.trace_id == flat.trace_id


@settings(max_examples=100, deadline=None)
@given(data=ROWS)
def test_transforms_preserve_validity(data):
    trace = Trace.from_rows(_rows(data), provenance={"seed": 0})
    out = compose(
        amplify_bursts(2),
        diurnal_ramp(period_ns=20_000.0, amplitude=0.3),
        tenant_remap({0: 5, 1: 6, 2: 7}),
        inject_flash_crowd(
            key="k0", start_ns=0.0, n_ops=5, spacing_ns=10.0,
            client=999, tenant=8,
        ),
    )(trace)
    out.validate()  # monotone timestamps, consistent client tenancy
    assert out.n_ops == trace.n_ops + 5
    # Pure functions of the rows: re-applying to a decoded copy of the
    # input yields the same identity.
    again = compose(
        amplify_bursts(2),
        diurnal_ramp(period_ns=20_000.0, amplitude=0.3),
        tenant_remap({0: 5, 1: 6, 2: 7}),
        inject_flash_crowd(
            key="k0", start_ns=0.0, n_ops=5, spacing_ns=10.0,
            client=999, tenant=8,
        ),
    )(Trace.decode(trace.to_jsonl()))
    assert again.trace_id == out.trace_id
