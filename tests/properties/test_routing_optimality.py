"""Cross-validation: algorithmic routes vs networkx shortest paths.

Every topology routes algebraically (no graph search) for speed; these
tests rebuild each topology as a networkx graph and check the static
route between node-bearing switches against the graph-shortest path.

Contracts encoded here:

* fat-tree D-mod-k, HyperX DOR and torus DOR are exactly shortest;
* dragonfly L-G-L (the route real dragonfly tables install) is within
  ONE hop of graph-shortest — for a small fraction of pairs a 2-hop
  path exists through an intermediate group whose global links happen
  to align, but hardware routes via the direct group-to-group link
  anyway.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import Dragonfly, FatTree, HyperX, Torus3D, make_topology


def _graph(topo) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(topo.n_switches))
    g.add_edges_from(topo.links())
    return g


@pytest.mark.parametrize(
    ("kind", "slack"),
    [("dragonfly", 1), ("fattree", 0), ("hyperx", 0), ("torus3d", 0)],
)
def test_static_routes_are_shortest_paths_dense(kind, slack):
    """Exhaustive check between node-bearing switches (the routing
    contract covers endpoints, not switch-to-switch management paths)."""
    topo = make_topology(kind, 32)
    g = _graph(topo)
    dist = dict(nx.all_pairs_shortest_path_length(g))
    endpoints = sorted({topo.node_switch(n) for n in range(topo.n_nodes)})
    exact = 0
    total = 0
    for s_sw in endpoints:
        for d_sw in endpoints:
            path = topo.static_path(s_sw, d_sw)
            hops = len(path) - 1
            total += 1
            if hops == dist[s_sw][d_sw]:
                exact += 1
            assert dist[s_sw][d_sw] <= hops <= dist[s_sw][d_sw] + slack, (
                f"{kind}: {s_sw}->{d_sw} static route of {hops} hops, "
                f"graph shortest is {dist[s_sw][d_sw]}"
            )
    # Routes are shortest for the overwhelming majority of pairs even
    # where slack is allowed (dragonfly: >=95%).
    assert exact / total > 0.95


@given(
    a=st.integers(min_value=2, max_value=5),
    h=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_dragonfly_minimal_routes_match_graph(a, h, data):
    topo = Dragonfly(a=a, p=1, h=h)
    g = _graph(topo)
    s_sw = data.draw(st.integers(min_value=0, max_value=topo.n_switches - 1))
    d_sw = data.draw(st.integers(min_value=0, max_value=topo.n_switches - 1))
    path = topo.static_path(s_sw, d_sw)
    shortest = nx.shortest_path_length(g, s_sw, d_sw)
    # L-G-L is within one hop of graph-shortest (see module docstring).
    assert shortest <= len(path) - 1 <= shortest + 1


@given(
    shape=st.tuples(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=5),
    ),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_torus_dor_routes_match_graph(shape, data):
    topo = Torus3D(shape=shape)
    g = _graph(topo)
    s_sw = data.draw(st.integers(min_value=0, max_value=topo.n_switches - 1))
    d_sw = data.draw(st.integers(min_value=0, max_value=topo.n_switches - 1))
    path = topo.static_path(s_sw, d_sw)
    assert len(path) - 1 == nx.shortest_path_length(g, s_sw, d_sw)


def test_reported_diameters_match_graph():
    for kind, n in (("dragonfly", 64), ("fattree", 54), ("hyperx", 64), ("torus3d", 64)):
        topo = make_topology(kind, n)
        g = _graph(topo)
        graph_diameter = nx.diameter(g)
        # The topology's declared diameter bounds real shortest paths.
        assert graph_diameter <= topo.diameter(), (kind, graph_diameter, topo.diameter())
