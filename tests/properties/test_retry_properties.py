"""Property tests: NACK-retry robustness under arbitrary receiver delays.

Whenever the receiver eventually posts capacity within the retry
budget, no put is ever lost — regardless of how sender bursts and
receiver re-arming interleave.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import EpochType, RvmaApi
from repro.sim import spawn


@given(
    n_puts=st.integers(min_value=1, max_value=10),
    slots=st.integers(min_value=1, max_value=4),
    arm_delay=st.floats(min_value=0.0, max_value=40_000.0),
    consume_gap=st.floats(min_value=0.0, max_value=8_000.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_no_put_lost_when_capacity_eventually_appears(
    n_puts, slots, arm_delay, consume_gap, seed
):
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow", seed=seed
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    consumed = []

    def receiver():
        yield arm_delay  # window may appear long after the first put
        win = yield from api1.init_window(
            0x5, epoch_threshold=1, epoch_type=EpochType.EPOCH_OPS
        )
        for _ in range(slots):
            yield from api1.post_buffer(win, size=64)
        for _ in range(n_puts):
            info = yield from api1.wait_completion(win)
            consumed.append(info.length)
            yield consume_gap  # slow consumer starves the bucket
            yield from api1.post_buffer(win, buffer=info.record.buffer)

    def sender():
        for _ in range(n_puts):  # burst with no pacing at all
            op = yield from api0.put(1, 0x5, size=64)
            yield op.local_done

    rp = spawn(cl.sim, receiver(), "rx")
    sp = spawn(cl.sim, sender(), "tx")
    cl.sim.run()
    assert rp.finished and sp.finished
    assert len(consumed) == n_puts
    assert all(length == 64 for length in consumed)
    assert cl.sim.stats.counter("rvma0.puts_lost").value == 0
