"""Property tests: fabric conservation and process-layer invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.network import FlowFabric, NetworkConfig, PacketFabric, RoutingMode, make_topology
from repro.sim import AllOf, Future, Simulator, spawn


@given(
    kind=st.sampled_from(["dragonfly", "fattree", "hyperx", "torus3d"]),
    routing=st.sampled_from([RoutingMode.STATIC, RoutingMode.ADAPTIVE]),
    sends=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),  # src
            st.integers(min_value=0, max_value=15),  # dst
            st.integers(min_value=0, max_value=20000),  # size
        ),
        min_size=1,
        max_size=25,
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_flow_fabric_conserves_every_message(kind, routing, sends, seed):
    """Every message sent is delivered exactly once, to the right node,
    with non-decreasing time and full size — no loss, no duplication,
    regardless of topology, routing mode or traffic mix."""
    sim = Simulator(seed=seed)
    topo = make_topology(kind, 16)
    fab = FlowFabric(sim, topo, NetworkConfig(routing=routing))
    deliveries = {n: [] for n in range(16)}
    for n in range(16):
        fab.attach(n, lambda d, n=n: deliveries[n].append(d))
    sent_ids = []
    for src, dst, size in sends:
        sent_ids.append(fab.send(src, dst, size).msg_id)
    sim.run()
    got = [(n, d) for n in range(16) for d in deliveries[n]]
    assert len(got) == len(sends)
    got_ids = sorted(d.message.msg_id for _, d in got)
    assert got_ids == sorted(sent_ids)
    for n, d in got:
        assert d.message.dst == n
        assert d.info.arrival_time >= d.info.send_time
        assert d.message.size == sends[sent_ids.index(d.message.msg_id)][2]


@given(
    n_messages=st.integers(min_value=1, max_value=10),
    size=st.integers(min_value=0, max_value=30000),
    routing=st.sampled_from([RoutingMode.STATIC, RoutingMode.ADAPTIVE]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_packet_fabric_conserves_every_byte(n_messages, size, routing, seed):
    """All fragments of every message arrive exactly once, covering the
    payload with no gaps or overlaps, under any routing mode."""
    sim = Simulator(seed=seed)
    fab = PacketFabric(sim, make_topology("fattree", 16), NetworkConfig(routing=routing))
    per_msg: dict[int, list] = {}
    fab.attach(9, lambda d: per_msg.setdefault(d.message.msg_id, []).append(d.packet))
    for _ in range(n_messages):
        fab.send(3, 9, size)
    sim.run()
    assert len(per_msg) == n_messages
    for pkts in per_msg.values():
        spans = sorted((p.offset, p.offset + p.size) for p in pkts)
        assert spans[0][0] == 0
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 == s2  # contiguous, no overlap
        assert spans[-1][1] == size


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_allof_resolves_at_latest_delay(delays):
    sim = Simulator()
    futures = [Future(sim) for _ in delays]
    for fut, d in zip(futures, delays):
        sim.schedule(d, fut.resolve, d)

    def proc():
        values = yield AllOf(futures)
        return values

    p = spawn(sim, proc())
    sim.run()
    assert p.result == list(delays)
    assert sim.now == max(delays)


@given(
    steps=st.lists(st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=20)
)
@settings(max_examples=60, deadline=None)
def test_process_sleeps_accumulate_exactly(steps):
    sim = Simulator()

    def proc():
        for s in steps:
            yield s
        return sim.now

    p = spawn(sim, proc())
    sim.run()
    assert p.result == sum(steps) or abs(p.result - sum(steps)) < 1e-6
