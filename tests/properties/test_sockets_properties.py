"""Property test: sockets echo any payload partitioning byte-exactly."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.network import NetworkConfig, RoutingMode
from repro.sockets import RvmaListener, connect
from repro.sim import spawn


@given(
    payload=st.binary(min_size=1, max_size=300),
    chunk_size=st.sampled_from([16, 32, 64]),
    cuts=st.lists(st.integers(min_value=1, max_value=299), max_size=5),
)
@settings(max_examples=20, deadline=None)
def test_echo_roundtrip_any_partition(payload, chunk_size, cuts):
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    points = sorted({c for c in cuts if c < len(payload)} | {0, len(payload)})
    pieces = [payload[a:b] for a, b in zip(points, points[1:])]
    result = {}

    def server():
        listener = yield from RvmaListener(srv_api, 5, chunk_size=chunk_size,
                                           depth=32).listen()
        conn = yield from listener.accept()
        data = yield from conn.recv(len(payload))
        yield from conn.send(data)

    def client():
        yield 500.0
        conn = yield from connect(cli_api, 0, port=5, chunk_size=chunk_size,
                                  depth=32)
        for piece in pieces:
            yield from conn.send(piece)
        result["echo"] = yield from conn.recv(len(payload))

    sp = spawn(cl.sim, server(), "s")
    cp = spawn(cl.sim, client(), "c")
    cl.sim.run()
    assert sp.finished and cp.finished
    assert result["echo"] == payload
