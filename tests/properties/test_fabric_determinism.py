"""Fast-vs-plain conformance for the vectorized packet fabric.

``Simulator(fast=False)`` drives the reference oracle — every packet a
:class:`RoutedPacket` hopping through real ``Switch`` components, two
engine events per hop.  ``fast=True`` runs the batched struct-of-arrays
path: one engine event per link-timestep.  The contract (see
``network/switch.py``) is that the two are indistinguishable on every
observable: byte-identical delivery streams (order, payload, per-packet
timing), identical ``fabric.*`` metrics and per-switch counters, and
identical span streams — across routing modes, topologies and fault
schedules.  Event *counts* are the one sanctioned difference.

These tests drive a bare :class:`PacketFabric` (no NICs) with seeded
random traffic so any divergence is attributable to the fabric alone,
mirroring how ``test_engine_determinism.py`` isolates the scheduler.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector
from repro.network.routing import RoutingMode
from repro.network.switch import PacketFabric
from repro.network.topology import make_topology
from repro.sim import Simulator

SEED = 0xFAB51C
WAVES = 8
SENDS_PER_WAVE = 4
WAVE_GAP_NS = 700.0


class _StubCluster:
    """Duck-typed stand-in: exactly what FaultInjector's fabric-level
    faults touch (node-death faults are out of scope here)."""

    def __init__(self, sim: Simulator, fabric: PacketFabric, topology) -> None:
        self.sim = sim
        self.fabric = fabric
        self.topology = topology


def _inter_switch_route(topo) -> list[int]:
    """Static switch route of some pair of nodes on different switches."""
    for dst in range(1, topo.n_nodes):
        a, b = topo.node_switch(0), topo.node_switch(dst)
        if a != b:
            return topo.static_path(a, b)
    raise AssertionError("single-switch topology has no inter-switch route")


def _apply_faults(sim: Simulator, fabric: PacketFabric, topo, kind: str) -> None:
    if kind == "none":
        return
    inj = FaultInjector(_StubCluster(sim, fabric, topo))
    path = _inter_switch_route(topo)
    if kind == "flaps":
        # Two overlapping windows on the first inter-switch cable.
        inj.flap_link(path[0], path[1], [(500.0, 2_500.0), (1_500.0, 4_000.0)])
    elif kind == "switch_fail":
        victim = path[1] if len(path) > 2 else path[0]
        inj.fail_switch(victim, start=800.0, end=3_000.0)
    else:  # pragma: no cover - guard against typo'd parametrization
        raise ValueError(kind)


def _run(fast: bool, topology: str, n_nodes: int, mode: RoutingMode, faults: str) -> tuple:
    sim = Simulator(seed=SEED, fast=fast)
    sim.spans.enable("fabric")
    topo = make_topology(topology, n_nodes)
    fabric = PacketFabric(sim, topo)

    deliveries: list = []

    def receiver(node: int):
        def on_delivery(d) -> None:
            deliveries.append(
                (
                    sim.now,
                    node,
                    d.message.src,
                    d.packet.seq,
                    d.packet.size,
                    d.packet.data,
                    d.info.send_time,
                    d.info.arrival_time,
                    d.info.hops,
                    d.info.path_index,
                )
            )

        return on_delivery

    for node in range(n_nodes):
        fabric.attach(node, receiver(node))
    _apply_faults(sim, fabric, topo, faults)

    rng = sim.rng.stream("traffic")

    def send_wave(wave: int) -> None:
        for _ in range(SENDS_PER_WAVE):
            src = int(rng.integers(0, n_nodes))
            dst = int(rng.integers(0, n_nodes))
            if src == dst:
                dst = (dst + 1) % n_nodes
            size = int(rng.integers(1, 4)) * 4096 + int(rng.integers(0, 512))
            fabric.send(src, dst, size, data=bytes([wave % 251]) * size, mode=mode)

    for wave in range(WAVES):
        sim.schedule_at(wave * WAVE_GAP_NS, send_wave, wave)
    sim.run()

    latency_histogram: dict[float, int] = {}
    for rec in deliveries:
        lat = rec[7] - rec[6]  # arrival - send, exact floats
        latency_histogram[lat] = latency_histogram.get(lat, 0) + 1
    spans = tuple(
        (s.category, s.name, s.start, s.end, tuple(sorted(s.fields.items())))
        for s in sim.spans.spans()
    )
    return (
        tuple(deliveries),
        tuple(sorted(latency_histogram.items())),
        fabric.observable_metrics(),
        tuple(sw.packets_forwarded for sw in fabric.switches),
        spans,
        sim.now,
    )


CASES = [
    ("star", 8, RoutingMode.STATIC, "none"),
    ("dragonfly", 16, RoutingMode.STATIC, "switch_fail"),
    ("dragonfly", 16, RoutingMode.ADAPTIVE, "flaps"),
    ("torus3d", 27, RoutingMode.ADAPTIVE, "switch_fail"),
    ("fattree", 16, RoutingMode.ADAPTIVE, "none"),
]


@pytest.mark.parametrize(
    "topology,n_nodes,mode,faults",
    CASES,
    ids=[f"{t}-{m.name.lower()}-{f}" for t, _n, m, f in CASES],
)
def test_fast_matches_plain_oracle(topology, n_nodes, mode, faults):
    fast = _run(True, topology, n_nodes, mode, faults)
    plain = _run(False, topology, n_nodes, mode, faults)
    # Compare piecewise for readable failures; the final clause pins
    # everything at once so new fields can't silently drift.
    assert fast[0] == plain[0], "delivery stream diverged"
    assert fast[1] == plain[1], "per-message latency histogram diverged"
    assert fast[2] == plain[2], "fabric.* metrics diverged"
    assert fast[3] == plain[3], "per-switch forward counters diverged"
    assert fast[4] == plain[4], "span stream diverged"
    assert fast == plain


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "plain"])
def test_each_mode_self_deterministic(fast):
    """Each execution path is also run-to-run deterministic per seed."""
    case = ("dragonfly", 16, RoutingMode.ADAPTIVE, "flaps")
    assert _run(fast, *case) == _run(fast, *case)


def test_fast_mode_sends_deliver_everything_under_chaos():
    """Sanity floor under faults: every packet is either delivered or
    attributed to a drop — the batch slot arrays must drain fully."""
    result = _run(True, "dragonfly", 16, RoutingMode.ADAPTIVE, "flaps")
    metrics = result[2]
    assert metrics["fabric.messages_sent"] == WAVES * SENDS_PER_WAVE
    delivered = len(result[0])
    dropped = metrics["fabric.deliveries_dropped"]
    assert delivered > 0
    assert dropped >= 0
    # every fragmented packet accounted for
    assert metrics["fabric.packets_delivered"] == delivered + dropped
