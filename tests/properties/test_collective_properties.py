"""Property tests: the collective tree structure and reductions."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.collectives.tree import _children, _parent
from repro.cluster import Cluster
from repro.collectives import TreeComm
from repro.motifs import RvmaProtocol
from repro.sim import spawn


@given(n=st.integers(min_value=1, max_value=500))
@settings(max_examples=100, deadline=None)
def test_reduction_tree_is_spanning(n):
    """Every rank except 0 has exactly one parent; following parents
    always reaches the root; parent/child views agree."""
    for rank in range(n):
        parent = _parent(rank)
        if rank == 0:
            assert parent is None
        else:
            assert 0 <= parent < rank  # acyclic by construction
            assert rank in _children(parent, n)
        for child in _children(rank, n):
            assert _parent(child) == rank
    # Edge count of a spanning tree.
    edges = sum(len(_children(r, n)) for r in range(n))
    assert edges == n - 1


@given(
    n=st.integers(min_value=2, max_value=9),
    values=st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=2),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_allreduce_equals_arithmetic_sum(n, values, seed):
    """For any rank count and inputs, the simulated allreduce agrees
    with plain arithmetic on every rank."""
    cl = Cluster.build(
        n_nodes=n, topology="dragonfly", nic_type="rvma", fidelity="flow", seed=seed
    )
    tc = TreeComm(cl, RvmaProtocol(), vector_slots=2)
    contributions = {r: [values[0] + r, values[1] * (r + 1) % 7919] for r in range(n)}
    results = {}

    def rank_proc(r):
        comm = yield from tc.setup(r)
        totals = yield from tc.allreduce_sum(comm, contributions[r])
        results[r] = totals

    procs = [spawn(cl.sim, rank_proc(r), f"r{r}") for r in range(n)]
    cl.sim.run()
    assert all(p.finished for p in procs)
    expect = [
        sum(contributions[r][0] for r in range(n)),
        sum(contributions[r][1] for r in range(n)),
    ]
    assert all(v == expect for v in results.values())
