"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.network.config import NetworkConfig
from repro.network.routing import RoutingMode
from repro.sim import Simulator




@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture(params=["fast", "plain"])
def engine_mode(request, monkeypatch) -> str:
    """Run the test under both engine modes.

    ``fast`` is the default pooled/bucketed scheduler; ``plain`` is the
    straight-heap mode.  The fixture flips the module-level default so
    every Simulator the test builds (including via Cluster.build)
    inherits the mode — semantics must be identical in both.
    """
    import repro.sim.engine as engine

    monkeypatch.setattr(engine, "DEFAULT_FAST", request.param == "fast")
    return request.param


@pytest.fixture
def rvma_pair() -> Cluster:
    """Two RVMA nodes on one switch, packet fidelity, adaptive routing."""
    return Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE),
    )


@pytest.fixture
def rdma_pair() -> Cluster:
    """Two RDMA nodes on one switch, packet fidelity, adaptive routing."""
    return Cluster.build(
        n_nodes=2, topology="star", nic_type="rdma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE),
    )


@pytest.fixture
def rvma_cluster8() -> Cluster:
    """Eight RVMA nodes on a dragonfly, flow fidelity."""
    return Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
