"""Unit tests for the host memory substrate."""

import pytest

from repro.memory import (
    CACHE_LINE,
    GEN6,
    HostBuffer,
    MemoryFault,
    MemoryRegion,
    MemoryWaiter,
    MWAIT,
    NodeMemory,
    PAPER_SIM,
    PcieBus,
    POLL,
    align_down,
    align_up,
    cache_line_of,
    is_aligned,
    same_cache_line,
)
from repro.sim import Simulator, spawn


# --- address helpers -----------------------------------------------------------


def test_alignment_helpers():
    assert align_up(0x1001, 64) == 0x1040
    assert align_up(0x1000, 64) == 0x1000
    assert align_down(0x107F, 64) == 0x1040
    assert is_aligned(0x1000, 64) and not is_aligned(0x1001, 64)
    assert cache_line_of(0x1039) == 0x1000
    assert same_cache_line(0x1000, 0x103F)
    assert not same_cache_line(0x103F, 0x1040)


def test_alignment_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(10, 3)
    with pytest.raises(ValueError):
        align_down(10, 0)


# --- NodeMemory -----------------------------------------------------------------


def test_alloc_write_read_roundtrip():
    mem = NodeMemory()
    a = mem.alloc(128, label="buf")
    mem.write(a.base + 10, b"hello")
    assert mem.read(a.base + 10, 5) == b"hello"
    assert mem.read(a.base, 4) == b"\x00" * 4


def test_allocations_are_aligned_and_disjoint():
    mem = NodeMemory()
    allocs = [mem.alloc(100, align=CACHE_LINE) for _ in range(10)]
    for a in allocs:
        assert a.base % CACHE_LINE == 0
    spans = sorted((a.base, a.end) for a in allocs)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_access_outside_allocation_faults():
    mem = NodeMemory()
    a = mem.alloc(64)
    with pytest.raises(MemoryFault):
        mem.read(a.end, 1)
    with pytest.raises(MemoryFault):
        mem.write(a.base + 60, b"12345")  # crosses the end
    with pytest.raises(MemoryFault):
        mem.read(0x10, 1)  # below all allocations


def test_zero_length_access_is_noop():
    mem = NodeMemory()
    mem.alloc(16)
    mem.write(0xDEAD, b"")  # no fault: nothing written
    assert mem.read(0xDEAD, 0) == b""


def test_u64_roundtrip_and_fill():
    mem = NodeMemory()
    a = mem.alloc(64)
    mem.write_u64(a.base, 0xDEADBEEF12345678)
    assert mem.read_u64(a.base) == 0xDEADBEEF12345678
    mem.fill(a.base, 8, 0xAB)
    assert mem.read(a.base, 8) == b"\xab" * 8


def test_watchpoint_fires_on_overlap_only():
    mem = NodeMemory()
    a = mem.alloc(256)
    hits = []
    mem.add_watchpoint(a.base + 64, 64, lambda addr, data: hits.append((addr, data)))
    mem.write(a.base, b"x" * 10)  # below range
    mem.write(a.base + 200, b"y")  # above range
    assert hits == []
    mem.write(a.base + 100, b"z" * 4)  # inside
    mem.write(a.base + 60, b"w" * 8)  # straddles start
    assert len(hits) == 2


def test_watchpoint_removal():
    mem = NodeMemory()
    a = mem.alloc(64)
    hits = []
    token = mem.add_watchpoint(a.base, 64, lambda *args: hits.append(args))
    mem.write(a.base, b"1")
    mem.remove_watchpoint(token)
    mem.remove_watchpoint(token)  # idempotent
    mem.write(a.base, b"2")
    assert len(hits) == 1


def test_lazy_backing_storage():
    mem = NodeMemory()
    a = mem.alloc(1 << 20)
    assert a._data is None  # no bytearray until touched
    mem.write(a.base, b"x")
    assert a._data is not None


def test_accounting_counters():
    mem = NodeMemory()
    a = mem.alloc(64)
    mem.write(a.base, b"abcd")
    mem.read(a.base, 2)
    assert mem.bytes_written == 4 and mem.bytes_read == 2


# --- HostBuffer / MemoryRegion ----------------------------------------------------


def test_host_buffer_bounds_checks():
    mem = NodeMemory()
    buf = HostBuffer.allocate(mem, 32)
    buf.write(0, b"a" * 32)
    assert buf.contents() == b"a" * 32
    with pytest.raises(ValueError):
        buf.write(30, b"xyz")
    with pytest.raises(ValueError):
        buf.read(0, 33)
    with pytest.raises(ValueError):
        buf.read(-1, 2)


def test_memory_region_contains():
    mr = MemoryRegion(addr=0x1000, length=0x100, rkey=7, node_id=0)
    assert mr.contains(0x1000, 0x100)
    assert mr.contains(0x10FF, 1)
    assert not mr.contains(0x10FF, 2)
    assert not mr.contains(0xFFF, 1)


# --- MWait / polling ---------------------------------------------------------------


def test_wait_for_write_wakes_with_model_delay():
    sim = Simulator()
    mem = NodeMemory()
    a = mem.alloc(64)
    waiter = MemoryWaiter(sim, mem)

    def proc():
        addr = yield waiter.wait_for_write(a.base, MWAIT)
        return (addr, sim.now)

    p = spawn(sim, proc())
    sim.schedule(100.0, mem.write, a.base, b"x")
    sim.run()
    addr, when = p.result
    assert addr == a.base
    assert when == pytest.approx(100.0 + MWAIT.wake_latency)


def test_wait_for_nonzero_u64_ignores_zero_writes():
    sim = Simulator()
    mem = NodeMemory()
    a = mem.alloc(64)
    waiter = MemoryWaiter(sim, mem)

    def proc():
        value = yield waiter.wait_for_nonzero_u64(a.base, MWAIT)
        return value

    p = spawn(sim, proc())
    sim.schedule(10.0, mem.write_u64, a.base, 0)  # spurious
    sim.schedule(20.0, mem.write_u64, a.base, 0xABC)
    sim.run()
    assert p.result == 0xABC


def test_wait_for_nonzero_u64_already_set():
    sim = Simulator()
    mem = NodeMemory()
    a = mem.alloc(64)
    mem.write_u64(a.base, 5)
    waiter = MemoryWaiter(sim, mem)

    def proc():
        value = yield waiter.wait_for_nonzero_u64(a.base)
        return value

    p = spawn(sim, proc())
    sim.run()
    assert p.result == 5


def test_wait_for_byte_sentinel():
    sim = Simulator()
    mem = NodeMemory()
    a = mem.alloc(64)
    waiter = MemoryWaiter(sim, mem)

    def proc():
        yield waiter.wait_for_byte(a.base + 63, 7, POLL)
        return sim.now

    p = spawn(sim, proc())
    sim.schedule(10.0, mem.write, a.base + 63, b"\x05")  # wrong value
    sim.schedule(30.0, mem.write, a.base + 63, b"\x07")
    sim.run()
    assert p.result == pytest.approx(30.0 + POLL.delay_after_store())


def test_poll_model_costs_more_idle_overhead_than_mwait():
    assert POLL.delay_after_store() > MWAIT.delay_after_store() - MWAIT.wake_latency
    assert MWAIT.delay_after_store() == MWAIT.wake_latency


# --- PCIe -----------------------------------------------------------------------


def test_pcie_generations_ordered():
    assert GEN6.latency < PAPER_SIM.latency


def test_pcie_bus_transactions():
    bus = PcieBus(PAPER_SIM)
    assert bus.transaction_time() == PAPER_SIM.latency
    assert bus.round_trip() == 2 * PAPER_SIM.latency
    t = bus.transaction_time(size_bytes=int(PAPER_SIM.bandwidth * 100))
    assert t == pytest.approx(PAPER_SIM.latency + 100.0)
    assert bus.transactions == 2
