"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    SimulationError,
    Simulator,
)


def test_schedule_runs_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(30.0, out.append, "c")
    sim.schedule(10.0, out.append, "a")
    sim.schedule(20.0, out.append, "b")
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.now == 30.0


def test_equal_time_runs_in_insertion_order():
    sim = Simulator()
    out = []
    for label in "abcde":
        sim.schedule(5.0, out.append, label)
    sim.run()
    assert out == list("abcde")


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    out = []
    sim.schedule(5.0, out.append, "normal")
    sim.schedule(5.0, out.append, "low", priority=PRIORITY_LOW)
    sim.schedule(5.0, out.append, "high", priority=PRIORITY_HIGH)
    sim.run()
    assert out == ["high", "normal", "low"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancel_skips_event():
    sim = Simulator()
    out = []
    ev = sim.schedule(5.0, out.append, "cancelled")
    sim.schedule(6.0, out.append, "kept")
    sim.cancel(ev)
    sim.run()
    assert out == ["kept"]


def test_run_until_stops_at_boundary():
    sim = Simulator()
    out = []
    sim.schedule(10.0, out.append, "early")
    sim.schedule(100.0, out.append, "late")
    sim.run(until=50.0)
    assert out == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert out == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=3)
    assert out == [0, 1, 2]


def test_events_chain_from_callbacks():
    sim = Simulator()
    out = []

    def first():
        out.append(("first", sim.now))
        sim.schedule(5.0, second)

    def second():
        out.append(("second", sim.now))

    sim.schedule(10.0, first)
    sim.run()
    assert out == [("first", 10.0), ("second", 15.0)]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_events_counts_live_only():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.cancel(ev)
    assert sim.pending_events == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(ev)
    assert sim.peek_time() == 2.0


def test_run_not_reentrant():
    sim = Simulator()
    seen = []

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()
        seen.append(True)

    sim.schedule(1.0, reenter)
    sim.run()
    assert seen == [True]


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_identical_seeds_identical_schedules():
    def build(seed):
        sim = Simulator(seed=seed)
        trace = []
        for i in range(20):
            jitter = sim.rng.random("test") * 10
            sim.schedule(jitter, trace.append, i)
        sim.run()
        return trace, sim.now

    t1, now1 = build(42)
    t2, now2 = build(42)
    t3, _ = build(43)
    assert t1 == t2 and now1 == now2
    assert t1 != t3  # different seed, different jitter ordering


# --- cancellation garbage / heap compaction --------------------------------


def test_cancelled_entries_do_not_leak_in_heap():
    """Regression: lazy cancellation used to leave dead heap entries
    forever; chaos-style timer churn (arm, then ACK-cancel) grew the
    heap unboundedly.  Compaction must keep len(_heap) bounded by the
    live population, not by the total number of timers ever armed."""
    sim = Simulator(seed=7)
    peak = 0
    for _wave in range(200):
        timers = [sim.schedule(1_000_000.0, lambda: None) for _ in range(100)]
        for ev in timers:
            ev.cancel()
        peak = max(peak, len(sim._heap))
    # 20,000 timers armed and cancelled; without compaction the heap
    # would hold ~20,000 dead entries.
    assert sim.pending_events == 0
    assert peak < 2_000
    assert len(sim._heap) < 200


def test_compaction_preserves_survivors_and_order():
    sim = Simulator(seed=7)
    log = []
    keep = []
    for i in range(500):
        ev = sim.schedule(float(1000 + i), log.append, i)
        if i % 50 == 0:
            keep.append(i)
        else:
            ev.cancel()
    # Cancels above crossed the compaction threshold repeatedly.
    assert sim.pending_events == len(keep)
    sim.run()
    assert log == keep


def test_compaction_trims_cancelled_bucket_members():
    sim = Simulator(seed=7)
    log = []
    for _wave in range(40):
        evs = sim.schedule_batch(5_000.0, [(log.append, (i,)) for i in range(50)])
        for ev in evs[1:]:
            ev.cancel()
    assert sim.pending_events == 40
    assert len(sim._heap) < 200
    sim.run()
    assert log == [0] * 40


def test_pending_events_is_exact_across_mixed_apis():
    sim = Simulator(seed=7)
    sim.post(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    sim.post_batch(3.0, [(lambda: None, ()), (lambda: None, ())])
    evs = sim.schedule_batch(4.0, [(lambda: None, ()), (lambda: None, ())])
    assert sim.pending_events == 6
    ev.cancel()
    evs[0].cancel()
    assert sim.pending_events == 4
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_executed == 4
