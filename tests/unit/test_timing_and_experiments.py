"""Unit tests for the timing models, experiment drivers and reporting."""

import pytest

from repro.experiments.report import ExperimentResult, format_table
from repro.network.routing import RoutingMode
from repro.rdma.completion_modes import CompletionMode
from repro.timing import (
    FIG45_SIZES,
    TESTBEDS,
    UCX_CX5_THUNDERX2,
    VERBS_OPA_SKYLAKE,
    AmortizationPoint,
    amortization_analysis,
    latency_sweep,
    measure_setup_ns,
    rdma_ucx_latency,
    rdma_verbs_latency,
    rvma_latency,
)


# --- calibration ---------------------------------------------------------------


def test_testbeds_registered():
    assert set(TESTBEDS) == {"opa100-skylake-verbs", "cx5-thunderx2-ucx"}
    assert FIG45_SIZES[0] == 2 and FIG45_SIZES[-1] == 65536


def test_testbed_nic_configs_carry_costs():
    tb = VERBS_OPA_SKYLAKE
    assert tb.rvma_nic_config().pcie is tb.pcie
    assert tb.rdma_nic_config().nic_proc == tb.nic_proc


# --- microbenchmarks --------------------------------------------------------------


def test_rvma_latency_monotone_in_size():
    lat = [rvma_latency(VERBS_OPA_SKYLAKE, s, iterations=3, warmup=1)
           for s in (64, 4096, 65536)]
    assert lat[0] < lat[1] < lat[2]


def test_rdma_latency_exceeds_rvma_everywhere():
    for size in (2, 1024, 65536):
        rvma = rvma_latency(VERBS_OPA_SKYLAKE, size, iterations=3, warmup=1)
        rdma = rdma_verbs_latency(VERBS_OPA_SKYLAKE, size, iterations=3, warmup=1)
        assert rdma > rvma


def test_lastbyte_static_close_to_rvma():
    rvma = rvma_latency(VERBS_OPA_SKYLAKE, 64, routing=RoutingMode.STATIC,
                        iterations=3, warmup=1)
    lastbyte = rdma_verbs_latency(
        VERBS_OPA_SKYLAKE, 64, CompletionMode.LAST_BYTE_POLL,
        RoutingMode.STATIC, iterations=3, warmup=1,
    )
    assert abs(rvma - lastbyte) / lastbyte < 0.15  # "comparable" (paper)


def test_ucx_latency_above_verbs_latency():
    verbs = rdma_verbs_latency(VERBS_OPA_SKYLAKE, 64, iterations=3, warmup=1)
    ucx = rdma_ucx_latency(UCX_CX5_THUNDERX2, 64, iterations=3, warmup=1)
    assert ucx > verbs


def test_ucx_lastbyte_requires_static():
    with pytest.raises(ValueError):
        rdma_ucx_latency(
            UCX_CX5_THUNDERX2, 64,
            routing=RoutingMode.ADAPTIVE, completion=CompletionMode.LAST_BYTE_POLL,
        )


def test_latency_sweep_reduction_positive_and_decreasing():
    pts = latency_sweep(VERBS_OPA_SKYLAKE, [2, 65536], iterations=3, warmup=1)
    assert all(p.reduction_pct > 0 for p in pts)
    assert pts[0].reduction_pct > pts[1].reduction_pct
    assert pts[0].speedup > 1.0


def test_latency_sweep_rejects_unknown_interface():
    with pytest.raises(ValueError):
        latency_sweep(VERBS_OPA_SKYLAKE, [64], interface="sockets")


# --- amortization -------------------------------------------------------------------


def test_setup_cost_positive_and_ucx_heavier():
    verbs = measure_setup_ns(UCX_CX5_THUNDERX2, 4096, "verbs")
    ucx = measure_setup_ns(UCX_CX5_THUNDERX2, 4096, "ucx")
    assert verbs > 1000
    assert ucx > verbs  # rkey pack/unpack on top


def test_amortization_point_formula():
    p = AmortizationPoint(size=64, setup_ns=9000.0, steady_ns=1000.0, tolerance=0.03)
    assert p.exchanges_needed == 300
    tight = AmortizationPoint(size=64, setup_ns=10.0, steady_ns=1000.0, tolerance=0.03)
    assert tight.exchanges_needed == 1  # floor at one exchange


def test_amortization_analysis_static_needs_more():
    out = amortization_analysis(UCX_CX5_THUNDERX2, [256], "ucx")
    static, adaptive = out["static"][0], out["adaptive"][0]
    assert static.steady_ns < adaptive.steady_ns
    assert static.exchanges_needed >= adaptive.exchanges_needed


# --- reporting -----------------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["bbbb", 22.5]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_experiment_result_markdown_includes_claims():
    r = ExperimentResult(
        name="figX",
        title="Demo",
        headers=["a"],
        rows=[[1]],
        summary={"speedup": 2.0},
        paper_claims={"speedup": 2.5},
    )
    md = r.to_markdown()
    assert "### figX: Demo" in md
    assert "| a |" in md
    assert "**speedup** = 2.00 (paper: 2.50)" in md
    assert "Demo" in r.to_text()


def test_experiment_result_large_numbers_formatted():
    r = ExperimentResult("f", "t", ["n"], [[123456.0]])
    assert "123,456" in r.to_text()
