"""Unit tests: multi-tenant QoS primitives (wire, bucket, DRR, admission).

The service-level isolation story is covered by the integration suite
(tests/integration/test_kv_qos.py) and the noisy-neighbor experiment;
this file pins the mechanism contracts each layer relies on.
"""

from __future__ import annotations

import pytest

from repro.services.qos import (
    AdmissionController,
    ClientRobustnessConfig,
    DeficitRoundRobin,
    QosConfig,
    TokenBucket,
)
from repro.services.tenancy import (
    PlacementQuota,
    TenantDirectory,
    TenantSpec,
    install_placement_quota,
)
from repro.services.wire import (
    DEFAULT_TENANT,
    OP_PUT,
    RequestDecoder,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_NAMES,
    STATUS_OVERLOAD,
    WireError,
    encode_request,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------- wire


def test_request_frame_round_trips_tenant_id():
    frame = encode_request(OP_PUT, 7, 42, b"key", b"value", tenant=513)
    (req,) = RequestDecoder().feed(frame)
    assert (req.op, req.client_id, req.req_id) == (OP_PUT, 7, 42)
    assert (req.key, req.value, req.tenant) == (b"key", b"value", 513)


def test_request_frame_defaults_to_default_tenant():
    (req,) = RequestDecoder().feed(encode_request(OP_PUT, 1, 1, b"k"))
    assert req.tenant == DEFAULT_TENANT


def test_tenant_id_must_fit_wire_field():
    with pytest.raises(WireError):
        encode_request(OP_PUT, 1, 1, b"k", tenant=1 << 16)


def test_qos_statuses_are_distinct_and_named():
    codes = {STATUS_OVERLOAD, STATUS_DEADLINE_EXCEEDED}
    assert len(codes) == 2
    for code in codes:
        assert code in STATUS_NAMES


# --------------------------------------------------------------- token bucket


def test_token_bucket_starts_full_and_depletes():
    bucket = TokenBucket(rate_per_ns=1.0, burst=100.0, now=0.0)
    assert bucket.try_take(100.0, now=0.0)
    assert not bucket.try_take(1.0, now=0.0)


def test_token_bucket_refills_at_rate_and_caps_at_burst():
    bucket = TokenBucket(rate_per_ns=0.5, burst=100.0, now=0.0)
    assert bucket.try_take(100.0, now=0.0)
    assert bucket.available(now=50.0) == pytest.approx(25.0)
    # A long idle period cannot bank more than one burst.
    assert bucket.available(now=10_000.0) == pytest.approx(100.0)


def test_token_bucket_failed_take_leaves_tokens_intact():
    bucket = TokenBucket(rate_per_ns=0.0, burst=10.0, now=0.0)
    assert not bucket.try_take(11.0, now=0.0)
    assert bucket.available(now=0.0) == pytest.approx(10.0)


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_ns=-1.0, burst=10.0)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_ns=1.0, burst=0.0)


# ------------------------------------------------------------------------ DRR


def test_drr_weighted_shares_over_backlogged_tenants():
    drr = DeficitRoundRobin(quantum=100)
    for i in range(200):
        drr.push(1, f"a{i}", cost=100, weight=3.0)
        drr.push(2, f"b{i}", cost=100, weight=1.0)
    drr.take(budget=20_000)
    served = drr.served_cost
    # Continuously backlogged 3:1 weights must serve ~3:1 bytes.
    assert served[1] / served[2] == pytest.approx(3.0, rel=0.15)


def test_drr_serves_item_larger_than_quantum():
    drr = DeficitRoundRobin(quantum=10)
    drr.push(1, "big", cost=1000)
    # Work conservation: the deficit accrues across ring visits inside
    # one take() call rather than returning empty forever.
    assert drr.take(budget=1) == ["big"]
    assert drr.pending_items == 0


def test_drr_budget_bounds_sweep_but_never_starves():
    drr = DeficitRoundRobin(quantum=100)
    for i in range(10):
        drr.push(1, i, cost=100)
    first = drr.take(budget=250)
    assert 1 <= len(first) <= 3
    assert drr.take(budget=None) == list(range(len(first), 10))
    assert (drr.pending_items, drr.pending_cost) == (0, 0)


def test_drr_idle_tenant_carries_no_credit():
    drr = DeficitRoundRobin(quantum=100)
    drr.push(1, "x", cost=100)
    assert drr.take() == ["x"]
    # After draining, the deficit resets: a returning tenant starts cold.
    drr.push(1, "y", cost=150)
    drr.push(2, "z", cost=100)
    assert set(drr.take()) == {"y", "z"}


def test_drr_validates_parameters():
    with pytest.raises(ValueError):
        DeficitRoundRobin(quantum=0)
    with pytest.raises(ValueError):
        DeficitRoundRobin().set_weight(1, 0.0)


# ------------------------------------------------------------------- tenancy


def test_tenant_spec_validates_id_and_weight():
    with pytest.raises(ValueError):
        TenantSpec(tenant_id=1 << 16)
    with pytest.raises(ValueError):
        TenantSpec(tenant_id=1, weight=0.0)


def test_tenant_directory_defaults_unknown_tenants_and_nodes():
    directory = TenantDirectory((TenantSpec(1, weight=2.0),))
    directory.assign_node(5, 1)
    assert directory.spec(1).weight == 2.0
    assert directory.spec(99) is directory.default_spec
    assert directory.tenant_of_node(5) == 1
    assert directory.tenant_of_node(6) == DEFAULT_TENANT


def test_placement_quota_meters_only_the_request_mailbox_slice():
    sim = Simulator()
    directory = TenantDirectory(
        (TenantSpec(1, nic_quota_bytes_per_us=1.0, nic_quota_burst_bytes=1000.0),)
    )
    directory.assign_node(3, 1)
    quota = PlacementQuota(sim, directory, mailbox_lo=100, mailbox_hi=200)
    # Outside the metered slice: always admitted, bucket untouched.
    assert quota.admit(src=3, mailbox=99, nbytes=10**9, now=0.0)
    assert quota.admit(src=3, mailbox=100, nbytes=1000, now=0.0)
    assert not quota.admit(src=3, mailbox=100, nbytes=1, now=0.0)
    assert sim.stats.counters()["service.kv.tenant.quota_rejects.t1"] == 1
    # Unassigned source nodes fall to the (unmetered) default tenant.
    assert quota.admit(src=4, mailbox=100, nbytes=10**9, now=0.0)


def test_install_placement_quota_attaches_to_the_nic():
    class _Nic:
        placement_quota = None

    class _Node:
        def __init__(self, sim):
            self.sim = sim
            self.nic = _Nic()

    node = _Node(Simulator())
    quota = install_placement_quota(
        node, TenantDirectory(), mailbox_lo=0, mailbox_hi=10
    )
    assert node.nic.placement_quota is quota


# ------------------------------------------------------------------ admission


def _admission(config=None, **spec_kw):
    sim = Simulator()
    directory = TenantDirectory((TenantSpec(1, **spec_kw),))
    return sim, AdmissionController(sim, directory, config)


def test_admission_unmetered_tenant_always_admits():
    sim, ctrl = _admission()
    assert all(ctrl.admit(DEFAULT_TENANT, 10**6) for _ in range(100))
    assert "service.kv.overload_replies" not in {
        k: v for k, v in sim.stats.counters().items() if v
    }


def test_admission_sheds_over_rate_tenant_into_counters():
    sim, ctrl = _admission(admit_rate_bytes_per_us=1.0, admit_burst_bytes=100.0)
    assert ctrl.admit(1, 100)
    assert not ctrl.admit(1, 100)
    counters = sim.stats.counters()
    assert counters["service.kv.tenant.admitted.t1"] == 1
    assert counters["service.kv.tenant.shed.t1"] == 1
    assert counters["service.kv.overload_replies"] == 1
    # 1 B/us refills 100 B in 100 us of sim time.
    sim.now = 100_000.0
    assert ctrl.admit(1, 100)


def test_admission_overload_flag_multiplies_cost():
    config = QosConfig(
        slo_p99_ns=1000.0,
        min_overload_samples=4,
        overload_check_interval_ns=0.0,
        overload_shed_factor=10.0,
    )
    sim, ctrl = _admission(
        config, admit_rate_bytes_per_us=0.001, admit_burst_bytes=1000.0
    )
    for _ in range(8):
        ctrl.note_sojourn(50_000.0)  # p99 far above the 1 us SLO
    assert ctrl.admit(1, 100)  # charged 100 * 10 under overload
    assert ctrl.overloaded
    assert not ctrl.admit(1, 1)  # 10 effective > ~0 remaining
    counters = sim.stats.counters()
    assert counters["service.kv.tenant.shed.t1"] == 1
