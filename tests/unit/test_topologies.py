"""Unit tests for the interconnect topologies."""

import pytest

from repro.network.topology import (
    Dragonfly,
    FatTree,
    HyperX,
    Star,
    Torus3D,
    make_topology,
)

ALL_KINDS = ("dragonfly", "fattree", "hyperx", "torus3d")


def _check_all_pairs(topo, pairs):
    for s, d in pairs:
        ssw, dsw = topo.node_switch(s), topo.node_switch(d)
        static = topo.static_path(ssw, dsw)
        topo.validate_path(static, ssw, dsw)
        assert len(static) - 1 <= topo.diameter() or ssw == dsw
        cands = topo.candidate_paths(ssw, dsw)
        assert cands, "adaptive candidates must be non-empty"
        for path in cands:
            topo.validate_path(path, ssw, dsw)


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("n", [8, 64, 200])
def test_factory_builds_and_routes(kind, n):
    topo = make_topology(kind, n)
    assert topo.n_nodes == n
    pairs = [(0, n - 1), (1, n // 2), (n // 3, n // 3), (n - 1, 0)]
    _check_all_pairs(topo, pairs)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_neighbor_symmetry(kind):
    topo = make_topology(kind, 64)
    for sw in range(topo.n_switches):
        for nb in topo.switch_neighbors(sw):
            assert sw in topo.switch_neighbors(nb), f"{sw}<->{nb} asymmetric"


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_node_switch_in_range(kind):
    topo = make_topology(kind, 64)
    for node in range(topo.n_nodes):
        assert 0 <= topo.node_switch(node) < topo.n_switches
    with pytest.raises(ValueError):
        topo.node_switch(64)
    with pytest.raises(ValueError):
        topo.node_switch(-1)


# --- dragonfly -----------------------------------------------------------------


def test_dragonfly_structure():
    df = Dragonfly(a=4, p=2, h=2)
    assert df.groups == 9
    assert df.n_switches == 36
    assert df.n_nodes == 72
    # Each switch: a-1 intra neighbours + h global.
    for sw in range(df.n_switches):
        assert len(df.switch_neighbors(sw)) == (df.a - 1) + df.h


def test_dragonfly_global_link_is_mutual():
    df = Dragonfly(a=4, p=2, h=2)
    for g1 in range(df.groups):
        for g2 in range(df.groups):
            if g1 == g2:
                continue
            out = df._global_link_owner(g1, g2)
            back = df._global_link_owner(g2, g1)
            assert back in df.switch_neighbors(out)


def test_dragonfly_minimal_path_is_lgl():
    df = Dragonfly(a=4, p=2, h=2)
    path = df.static_path(0, df.n_switches - 1)
    assert len(path) <= 4  # L-G-L touches at most 4 switches


def test_dragonfly_valiant_paths_differ_from_minimal():
    df = Dragonfly(a=4, p=2, h=2)
    src, dst = 0, df.n_switches - 1
    cands = df.candidate_paths(src, dst)
    assert len(cands) > 1
    assert any(len(p) > len(cands[0]) for p in cands[1:])


def test_dragonfly_capacity_check():
    with pytest.raises(ValueError):
        Dragonfly(a=2, p=1, h=1, n_nodes=1000)


# --- fat-tree --------------------------------------------------------------------


def test_fattree_structure():
    ft = FatTree(k=4)
    assert ft.n_nodes == 16
    assert ft.n_edge == 8 and ft.n_agg == 8 and ft.n_core == 4
    # Core switches link to one agg per pod.
    core0 = ft.core_id(0)
    assert len(ft.switch_neighbors(core0)) == ft.n_pods


def test_fattree_same_pod_two_hops():
    ft = FatTree(k=4)
    # nodes 0 and 2 are in the same pod, different edge switches
    s, d = ft.node_switch(0), ft.node_switch(2)
    assert s != d and ft.pod_of_edge(s) == ft.pod_of_edge(d)
    path = ft.static_path(s, d)
    assert len(path) == 3  # edge-agg-edge


def test_fattree_cross_pod_four_hops():
    ft = FatTree(k=4)
    s, d = ft.node_switch(0), ft.node_switch(15)
    path = ft.static_path(s, d)
    assert len(path) == 5  # edge-agg-core-agg-edge
    assert ft.is_core(path[2])


def test_fattree_dmodk_converges_per_destination():
    ft = FatTree(k=4)
    d = ft.node_switch(15)
    paths = [ft.static_path(ft.node_switch(s), d) for s in (0, 2, 4, 6)]
    # All static routes to one destination use the same core (D-mod-k).
    cores = {p[2] for p in paths if len(p) == 5}
    assert len(cores) == 1


def test_fattree_odd_k_rejected():
    with pytest.raises(ValueError):
        FatTree(k=3)


# --- hyperx --------------------------------------------------------------------


def test_hyperx_coords_roundtrip():
    hx = HyperX(dims=(4, 5), terminals=2)
    for sw in range(hx.n_switches):
        assert hx.switch_id(hx.coords(sw)) == sw


def test_hyperx_dor_corrects_dims_in_order():
    hx = HyperX(dims=(4, 4), terminals=1)
    src = hx.switch_id((0, 0))
    dst = hx.switch_id((3, 2))
    path = hx.static_path(src, dst)
    assert path == [src, hx.switch_id((3, 0)), dst]


def test_hyperx_candidates_cover_dim_orders():
    hx = HyperX(dims=(4, 4), terminals=1)
    src, dst = hx.switch_id((0, 0)), hx.switch_id((3, 2))
    cands = hx.candidate_paths(src, dst)
    assert len(cands) == 2  # two dimension orders
    assert all(len(p) == 3 for p in cands)


def test_hyperx_diameter_is_dims():
    assert HyperX(dims=(4, 4, 4), terminals=1).diameter() == 3


# --- torus -----------------------------------------------------------------------


def test_torus_wraparound_shortest_direction():
    t = Torus3D(shape=(8, 4, 4))
    src = t.switch_id((0, 0, 0))
    dst = t.switch_id((7, 0, 0))
    path = t.static_path(src, dst)
    assert len(path) == 2  # wraps around: 1 hop, not 7


def test_torus_path_length_bounded_by_diameter():
    t = Torus3D(shape=(6, 6, 6))
    src = t.switch_id((0, 0, 0))
    dst = t.switch_id((3, 3, 3))
    path = t.static_path(src, dst)
    assert len(path) - 1 == 9 == t.diameter()


def test_torus_size_two_ring_dedupes_neighbors():
    t = Torus3D(shape=(2, 2, 2))
    for sw in range(t.n_switches):
        nbrs = t.switch_neighbors(sw)
        assert len(nbrs) == len(set(nbrs)) == 3


# --- star ------------------------------------------------------------------------


def test_star_routes_trivially():
    s = Star(4)
    assert s.node_switch(3) == 0
    assert s.static_path(0, 0) == [0]
    assert s.diameter() == 0
    assert s.switch_neighbors(0) == []


def test_make_topology_unknown_kind():
    with pytest.raises(ValueError):
        make_topology("hypercube", 8)
