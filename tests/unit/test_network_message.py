"""Unit tests for messages, packets and fragmentation."""

import pytest

from repro.network.message import (
    MTU,
    PACKET_HEADER_BYTES,
    Delivery,
    DeliveryInfo,
    Message,
)


def test_single_packet_message():
    msg = Message(src=0, dst=1, size=100, data=b"x" * 100)
    assert msg.num_packets == 1
    pkts = msg.fragment()
    assert len(pkts) == 1
    assert pkts[0].offset == 0 and pkts[0].size == 100 and pkts[0].is_last
    assert pkts[0].data == b"x" * 100


def test_multi_packet_fragmentation_preserves_bytes():
    size = MTU * 2 + 500
    payload = bytes(range(256)) * (size // 256) + bytes(size % 256)
    msg = Message(src=0, dst=1, size=size, data=payload)
    pkts = msg.fragment()
    assert len(pkts) == 3
    assert [p.offset for p in pkts] == [0, MTU, 2 * MTU]
    assert sum(p.size for p in pkts) == size
    reassembled = b"".join(p.data for p in pkts)
    assert reassembled == payload
    assert pkts[-1].is_last and not pkts[0].is_last


def test_zero_size_message_still_one_packet():
    msg = Message(src=0, dst=1, size=0)
    assert msg.num_packets == 1
    assert msg.wire_size == PACKET_HEADER_BYTES


def test_wire_size_includes_per_packet_headers():
    msg = Message(src=0, dst=1, size=MTU * 2)
    assert msg.wire_size == MTU * 2 + 2 * PACKET_HEADER_BYTES


def test_size_data_mismatch_rejected():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, size=10, data=b"short")


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, size=-1)


def test_size_only_message_fragments_empty_data():
    msg = Message(src=0, dst=1, size=MTU + 1)
    pkts = msg.fragment()
    assert all(p.data == b"" for p in pkts)
    assert [p.size for p in pkts] == [MTU, 1]


def test_message_ids_unique():
    ids = {Message(src=0, dst=1, size=1).msg_id for _ in range(100)}
    assert len(ids) == 100


def test_delivery_whole_message_flag():
    msg = Message(src=0, dst=1, size=8)
    info = DeliveryInfo(send_time=0.0, arrival_time=1.0, hops=2)
    assert Delivery(msg, info).is_whole_message
    assert not Delivery(msg, info, packet=msg.fragment()[0]).is_whole_message
