"""Unit: scenario documents, the generator, fingerprints, shrink aids.

Everything here is pure document manipulation — no simulation runs.
The runner/shrinker/corpus end-to-end paths live in
``tests/integration/test_scenario_runner.py`` and
``tests/integration/test_scenario_corpus.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    MOTIF_KINDS,
    SCHEMA_VERSION,
    WORKLOAD_KINDS,
    FailureFingerprint,
    FaultEvent,
    Scenario,
    ScenarioError,
    generate,
    generate_many,
    regenerate,
    scrub_report,
)
from repro.scenarios.shrink import _candidates


def _motif_scenario(**kw) -> Scenario:
    base = dict(
        seed=1,
        workload_kind="allreduce",
        workload={"iterations": 3, "vector_len": 4},
        topology="star",
        n_nodes=4,
        fault_events=(
            FaultEvent(kind="partition", start=1_000.0, end=5_000.0, params=(1,)),
        ),
        drop_prob=0.05,
    )
    base.update(kw)
    return Scenario(**base)


# -------------------------------------------------------------------- documents


def test_document_round_trip_preserves_identity():
    s = _motif_scenario()
    back = Scenario.from_json(s.to_json())
    assert back == s
    assert back.scenario_id == s.scenario_id
    assert back.fault_events == s.fault_events


def test_canonical_json_is_key_sorted_and_stable():
    s = _motif_scenario()
    doc = json.loads(s.to_json())
    assert list(doc) == sorted(doc)
    assert s.to_json() == _motif_scenario().to_json()
    # Any semantic change moves the identity.
    assert s.with_changes(drop_prob=0.0).scenario_id != s.scenario_id


def test_save_load_round_trip(tmp_path):
    s = _motif_scenario()
    path = s.save(str(tmp_path / "s.json"))
    assert Scenario.load(path) == s


def test_loader_rejects_other_schema_versions():
    doc = _motif_scenario().to_dict()
    doc["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ScenarioError, match="schema"):
        Scenario.from_dict(doc)


@pytest.mark.parametrize(
    "mutation, match",
    [
        (dict(workload_kind="bitcoin"), "workload kind"),
        (dict(topology="mesh"), "topology"),
        (dict(routing="quantum"), "routing"),
        (dict(engine="warp"), "engine"),
        (dict(backend="tcp"), "backend"),
        (dict(n_nodes=1), "at least 2"),
        (dict(drop_prob=1.5), "drop_prob"),
        (
            dict(fault_events=(FaultEvent("partition", 5_000.0, 1_000.0, (0,)),)),
            "end <= start",
        ),
        (
            dict(fault_events=(FaultEvent("gremlin", 0.0, 1_000.0, (0,)),)),
            "fault kind",
        ),
    ],
)
def test_validation_rejects_malformed_fields(mutation, match):
    with pytest.raises(ScenarioError, match=match):
        _motif_scenario(**mutation).validate()


def test_validation_rejects_malformed_kv_and_differential():
    kv = dict(
        seed=1, workload_kind="kv", topology="star", n_nodes=2,
        workload={"scripts": [[["put", 0, 10]], [["get", 1, 0]]]},
    )
    with pytest.raises(ScenarioError, match="node per client"):
        Scenario(**kv).validate()  # 2 clients + server > 2 nodes
    with pytest.raises(ScenarioError, match="kv op"):
        Scenario(**{**kv, "n_nodes": 4, "workload": {"scripts": [[["frob", 0, 1]]]}}).validate()

    diff = dict(
        seed=1, workload_kind="differential", topology="star", n_nodes=4,
        workload={"channels": [[1, 0, 2]]}, compare=("rvma", "verbs"),
    )
    Scenario(**diff).validate()  # well-formed baseline
    with pytest.raises(ScenarioError, match=">= 2 backends"):
        Scenario(**{**diff, "compare": ("rvma",)}).validate()
    with pytest.raises(ScenarioError, match="src == dst"):
        Scenario(**{**diff, "workload": {"channels": [[2, 2, 1]]}}).validate()
    with pytest.raises(ScenarioError, match="outside"):
        Scenario(**{**diff, "workload": {"channels": [[9, 0, 1]]}}).validate()


def _kv_v2_scenario(**overrides):
    workload = {
        "scripts": [[["put", 0, 10]], [["get", 1, 0]]],
        "qos": True,
        "tenant_specs": [[1, 4.0, 128.0, 0.0], [2, 1.0, 64.0, 256.0]],
        "client_tenants": [1, 2],
    }
    workload.update(overrides.pop("workload", {}))
    fields = dict(
        seed=1, workload_kind="kv", topology="star", n_nodes=4,
        workload=workload, reliability=True,
    )
    fields.update(overrides)
    return Scenario(**fields)


def test_v1_documents_round_trip_with_their_own_schema():
    # A v1 corpus entry must keep its schema (and thus its scenario_id)
    # when reloaded by a v2-speaking runner.
    doc = _motif_scenario().to_dict()
    doc["schema"] = 1
    v1 = Scenario.from_dict(doc)
    assert v1.schema == 1
    assert v1.to_dict()["schema"] == 1
    assert Scenario.from_json(v1.to_json()) == v1


def test_kv_tenant_mix_validates_and_round_trips():
    s = _kv_v2_scenario()
    s.validate()
    assert Scenario.from_json(s.to_json()) == s


@pytest.mark.parametrize(
    "workload, match",
    [
        ({"qos": 1}, "must be a boolean"),
        ({"tenant_specs": [[1, 4.0, 128.0]]}, "malformed tenant spec"),
        ({"tenant_specs": [[1 << 16, 1.0, 0.0, 0.0]]}, "wire field"),
        ({"tenant_specs": [[1, 0.0, 0.0, 0.0]]}, "positive weight"),
        ({"tenant_specs": [[1, 1.0, -1.0, 0.0]]}, "rates must be"),
        ({"client_tenants": [1]}, "every kv script"),
        ({"client_tenants": [1, 9]}, "no tenant spec"),
        ({"tenant_specs": [], "client_tenants": None}, "need tenant_specs"),
    ],
)
def test_kv_tenant_mix_rejects_malformed_keys(workload, match):
    with pytest.raises(ScenarioError, match=match):
        _kv_v2_scenario(workload=workload).validate()


def test_kv_tenant_mix_requires_schema_v2():
    with pytest.raises(ScenarioError, match="schema >= 2"):
        _kv_v2_scenario(schema=1).validate()


def test_fault_event_row_round_trip_and_malformed_rows():
    ev = FaultEvent(kind="link_flap", start=10.0, end=20.0, params=(1, 2))
    assert FaultEvent.from_list(ev.to_list()) == ev
    with pytest.raises(ScenarioError):
        FaultEvent.from_list(["link_flap", 10.0, 20.0])  # missing params


# -------------------------------------------------------------------- generator


def test_generator_is_deterministic_per_seed():
    for seed in (1, 7, 23, 100):
        assert generate(seed).to_json() == generate(seed).to_json()
        assert regenerate(generate(seed)) == generate(seed)


def test_generator_output_always_validates_and_spans_kinds():
    scenarios = generate_many(1, 40)
    kinds = {s.workload_kind for s in scenarios}
    for s in scenarios:
        s.validate()  # never emits a malformed document
        assert s.workload_kind in WORKLOAD_KINDS
    # The weighted mix actually exercises multiple oracle paths.
    assert len(kinds) >= 3
    assert len({s.scenario_id for s in scenarios}) == len(scenarios)


def test_known_bad_scenarios_are_shaped_to_fail():
    for seed in (3, 7, 11):
        s = generate(seed, known_bad=True)
        assert s.workload_kind in MOTIF_KINDS
        assert s.reliability is False
        assert s.drop_prob >= 0.35


# ------------------------------------------------------------------ shrink aids


def test_size_strictly_decreases_under_every_candidate():
    for seed in (1, 5, 9, 13, 17, 21):
        s = generate(seed)
        for candidate, label in _candidates(s):
            assert candidate.size() < s.size(), f"seed {seed}: {label} did not shrink"


def test_workload_size_reflects_document_weight():
    s = _motif_scenario()
    assert s.workload_size() == 12  # 3 iterations x 4-wide vector
    smaller = s.with_changes(workload={"iterations": 1, "vector_len": 4})
    assert smaller.workload_size() < s.workload_size()
    assert s.with_changes(fault_events=()).size() < s.size()
    assert s.with_changes(drop_prob=0.0).size() < s.size()


# ------------------------------------------------------------------ fingerprints


def test_fingerprint_collect_sorts_and_dedupes():
    a = FailureFingerprint.collect(["invariant:gave_up", "exception:RuntimeError"])
    b = FailureFingerprint.collect(
        ["exception:RuntimeError", "invariant:gave_up", "invariant:gave_up"]
    )
    assert a == b and a.digest == b.digest
    assert bool(a) and not bool(FailureFingerprint())
    assert FailureFingerprint().describe() == "pass"
    assert a.digest in a.describe()


def test_scrub_report_zeroes_every_wall_clock_field():
    doc = {
        "meta": {"wall_s": 1.23},
        "spans": {
            "hottest_by_wall_time": [{"name": "x"}],
            "rows": [{"wall_time": 9.9, "sim_time": 5.0}],
        },
        "nested": [{"wall_start": 1.0, "wall_end": 2.0, "keep": "me"}],
    }
    out = scrub_report(doc)
    assert out["meta"]["wall_s"] == 0.0
    assert out["spans"]["hottest_by_wall_time"] == []
    assert out["spans"]["rows"][0] == {"wall_time": 0.0, "sim_time": 5.0}
    assert out["nested"][0] == {"wall_start": 0.0, "wall_end": 0.0, "keep": "me"}
