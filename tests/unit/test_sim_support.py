"""Unit tests for RNG streams, stats, tracing, links and units."""

import math

import numpy as np
import pytest

from repro.sim import (
    Component,
    Link,
    RngRegistry,
    SerializingLink,
    Simulator,
    Tracer,
)
from repro.units import (
    fmt_bytes,
    fmt_gbps,
    fmt_time,
    gbps,
    kib,
    mib,
    ns,
    seconds,
    serialization_ns,
    us,
)


# --- RNG --------------------------------------------------------------------


def test_rng_same_seed_same_stream():
    a = RngRegistry(7).stream("x").random(8)
    b = RngRegistry(7).stream("x").random(8)
    assert np.allclose(a, b)


def test_rng_streams_independent_of_creation_order():
    r1 = RngRegistry(7)
    _ = r1.stream("a").random(100)
    x1 = r1.stream("b").random(4)
    r2 = RngRegistry(7)
    x2 = r2.stream("b").random(4)
    assert np.allclose(x1, x2)


def test_rng_choice_bounds():
    r = RngRegistry(1)
    assert r.choice("c", 1) == 0
    for _ in range(50):
        assert 0 <= r.choice("c", 5) < 5
    with pytest.raises(ValueError):
        r.choice("c", 0)


def test_rng_shuffled_is_permutation():
    r = RngRegistry(2)
    items = list(range(10))
    shuffled = r.shuffled("s", items)
    assert sorted(shuffled) == items


# --- stats -----------------------------------------------------------------


def test_counter_and_registry():
    sim = Simulator()
    sim.stats.counter("a.x").add(3)
    sim.stats.counter("a.x").add()
    sim.stats.counter("b.y").add(2)
    assert sim.stats.counters("a") == {"a.x": 4}
    assert "a.x: 4" in sim.stats.report()


def test_summary_matches_numpy():
    sim = Simulator()
    data = [3.0, 1.5, 9.2, -4.0, 2.25, 8.0]
    s = sim.stats.summary("lat")
    for x in data:
        s.add(x)
    assert s.n == len(data)
    assert s.mean == pytest.approx(np.mean(data))
    assert s.stddev == pytest.approx(np.std(data, ddof=1))
    assert s.min == min(data) and s.max == max(data)
    assert s.total == pytest.approx(sum(data))


def test_summary_empty_is_safe():
    sim = Simulator()
    s = sim.stats.summary("empty")
    assert s.mean == 0.0 and s.variance == 0.0


def test_histogram_buckets():
    sim = Simulator()
    h = sim.stats.histogram("h", lo=0.0, hi=10.0, nbins=10)
    for x in [0.5, 1.5, 1.6, 9.99, -1.0, 10.0, 25.0]:
        h.add(x)
    assert h.bins[0] == 1 and h.bins[1] == 2 and h.bins[9] == 1
    assert h.underflow == 1 and h.overflow == 2
    assert h.count == 7
    assert len(h.bin_edges()) == 11


def test_histogram_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.stats.histogram("bad", lo=5.0, hi=5.0)


# --- trace ------------------------------------------------------------------


def test_tracer_disabled_records_nothing():
    t = Tracer(enabled=False)
    t.record("cat", "msg")
    assert len(t) == 0


def test_tracer_filtering():
    now = [0.0]
    t = Tracer(enabled=True, clock=lambda: now[0])
    t.record("nic0", "put sent", size=8)
    now[0] = 5.0
    t.record("nic1", "put received")
    t.record("nic1", "completion written")
    assert len(t.filter("nic1")) == 2
    assert len(t.filter(contains="completion")) == 1
    assert t.filter("nic0")[0].fields == {"size": 8}
    assert "put sent" in t.dump()


# --- links ------------------------------------------------------------------


class _Probe(Component):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.got = []
        self.port = self.add_port("p", lambda payload: self.got.append((self.sim.now, payload)))


def test_plain_link_delivers_after_latency():
    sim = Simulator()
    a, b = _Probe(sim, "a"), _Probe(sim, "b")
    Link(sim, a.port, b.port, latency=25.0)
    a.port.send("hello")
    sim.run()
    assert b.got == [(25.0, "hello")]


def test_serializing_link_fifo_and_bandwidth():
    sim = Simulator()
    a, b = _Probe(sim, "a"), _Probe(sim, "b")
    link = SerializingLink(sim, a.port, b.port, latency=10.0, bandwidth=2.0)  # 2 B/ns
    a.port.send("m1", size_bytes=100)  # tail at 50
    a.port.send("m2", size_bytes=100)  # tail at 100
    sim.run()
    assert [t for t, _ in b.got] == [60.0, 110.0]
    assert link.bytes_carried == 200


def test_serializing_link_full_duplex():
    sim = Simulator()
    a, b = _Probe(sim, "a"), _Probe(sim, "b")
    SerializingLink(sim, a.port, b.port, latency=10.0, bandwidth=1.0)
    a.port.send("x", size_bytes=50)
    b.port.send("y", size_bytes=50)
    sim.run()
    # Opposite directions do not serialize against each other.
    assert b.got[0][0] == 60.0 and a.got[0][0] == 60.0


def test_port_misuse_raises():
    sim = Simulator()
    a, b, c = _Probe(sim, "a"), _Probe(sim, "b"), _Probe(sim, "c")
    link = SerializingLink(sim, a.port, b.port, latency=1.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        c.port.send("nope")  # unconnected
    with pytest.raises(ValueError):
        link.transmit(c.port, "nope")  # not an endpoint
    with pytest.raises(ValueError):
        a.port.connect(link)  # already connected


# --- units ------------------------------------------------------------------


def test_unit_conversions():
    assert us(1) == 1000.0
    assert seconds(1) == 1e9
    assert ns(5) == 5.0
    assert kib(2) == 2048
    assert mib(1) == 1024 * 1024
    assert gbps(100) == 12.5  # bytes/ns
    assert serialization_ns(1250, gbps(100)) == pytest.approx(100.0)


def test_serialization_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        serialization_ns(10, 0.0)


def test_formatting():
    assert fmt_time(12.3) == "12.3ns"
    assert fmt_time(4500) == "4.500us"
    assert fmt_time(3.2e6) == "3.200ms"
    assert fmt_time(2.5e9) == "2.500s"
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(2048) == "2.0KiB"
    assert fmt_bytes(3 * 1024 * 1024) == "3.0MiB"
    assert fmt_gbps(gbps(100)) == "100Gbps"
    assert fmt_gbps(gbps(2000)) == "2Tbps"


def test_chrome_trace_export(tmp_path):
    now = [0.0]
    t = Tracer(enabled=True, clock=lambda: now[0])
    t.record("nic0", "put_placed", n=64)
    now[0] = 1500.0
    t.record("nic1", "completion_written", epoch=0)
    events = t.to_chrome_trace()
    assert len(events) == 2
    assert events[0]["tid"] == "nic0" and events[0]["ts"] == 0.0
    assert events[1]["ts"] == 1.5  # ns -> us
    assert events[1]["args"] == {"epoch": 0}
    out = tmp_path / "trace.json"
    assert t.save_chrome_trace(str(out)) == 2
    import json

    data = json.loads(out.read_text())
    assert len(data["traceEvents"]) == 2
