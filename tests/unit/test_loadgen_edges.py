"""Edge-case audit: open-loop arrival accounting at trace boundaries.

Regression pins for the LoadGenerator/TraceReplayer boundary behaviors
the trace work audited:

* ``max_backlog < 1`` is a configuration error, not a silent
  drop-everything workload (the cap check runs before the append);
* a dropped open-loop arrival consumes only the ``.arrival`` RNG draw —
  no ``.op``/``.key`` draws — so the synthesized op stream depends on
  backlog depth (and hence service timing).  That coupling is *by
  design* (it keeps the arrival process honest) and is exactly why
  cross-variant comparisons replay recorded traces instead;
* the replayer dispatches first-row-at-now and zero-gap rows
  immediately (legal in traces, unreachable for the exponential
  sampler), and its backlog cap drops deterministically.
"""

from __future__ import annotations

import pytest

from repro.services import LoadGenerator, WorkloadConfig
from repro.services.loadgen import LoadStats
from repro.services.wire import STATUS_OK
from repro.sim import Simulator
from repro.workloads import Trace, TraceReplayer, TraceRow


class _Reply:
    def __init__(self, status=STATUS_OK, payload=b""):
        self.status = status
        self.payload = payload


class _EchoClient:
    """Resolves every batch instantly with OK replies."""

    def __init__(self, tenant_id=0):
        self.tenant_id = tenant_id
        self.batches = []

    def execute_batch(self, ops, t0=None, deadline_ns=None):
        self.batches.append(list(ops))
        yield 1.0
        return [_Reply(payload=b"v") for _ in ops]

    def scan(self, prefix):
        yield 1.0
        return [(prefix + b"1", b"x")]


class _StuckClient:
    """Accepts one batch and never replies — a wedged service."""

    def __init__(self, tenant_id=0):
        self.tenant_id = tenant_id

    def execute_batch(self, ops, t0=None, deadline_ns=None):
        while True:
            yield 1e9

    def scan(self, prefix):
        while True:
            yield 1e9


# -------------------------------------------------------------- config guards


def test_loadgen_rejects_nonpositive_backlog_cap():
    sim = Simulator(seed=1)
    cfg = WorkloadConfig(mode="open", max_backlog=0)
    with pytest.raises(ValueError):
        LoadGenerator(sim, [_EchoClient()], cfg)


def test_replayer_rejects_nonpositive_backlog_cap():
    sim = Simulator(seed=1)
    trace = _trace([(0, "get", "a")])
    with pytest.raises(ValueError):
        TraceReplayer(sim, [_EchoClient()], trace, max_backlog=0)
    with pytest.raises(ValueError):
        TraceReplayer(sim, [_EchoClient()], trace, batch=0)


# -------------------------------------------------------- drop-path RNG audit


def test_dropped_arrivals_consume_no_op_draws():
    # With a wedged client pool and a backlog cap of 1, the first
    # arrival is taken by the worker, the second fills the backlog, and
    # every later arrival is dropped at the cap.  Each drop must burn
    # only the arrival draw: the op-sequence counter equals the number
    # of arrivals that actually sampled an op.
    sim = Simulator(seed=7)
    cfg = WorkloadConfig(
        n_ops=12, mode="open", max_backlog=1, mean_interarrival_ns=2000.0
    )
    gen = LoadGenerator(sim, [_StuckClient()], cfg)
    from repro.sim import spawn

    spawn(sim, gen.run(), "load")
    sim.run(until=5_000_000.0)
    assert gen.stats.ops_issued == 12
    assert gen.stats.ops_dropped == 10
    assert gen._seq == gen.stats.ops_issued - gen.stats.ops_dropped
    assert sim.stats.counter("service.kv.client.backlog_dropped").value == 10


def test_open_loop_all_resolved_when_pool_keeps_up():
    sim = Simulator(seed=7)
    cfg = WorkloadConfig(n_ops=30, mode="open", mean_interarrival_ns=2000.0)
    client = _EchoClient()
    gen = LoadGenerator(sim, [client], cfg)
    from repro.sim import spawn

    spawn(sim, gen.run(), "load")
    sim.run(until=5_000_000.0)
    assert gen.stats.ops_dropped == 0
    assert gen.stats.all_resolved()
    assert gen._seq == 30


# ------------------------------------------------------------ replayer edges


def _trace(steps, client=5, tenant=0):
    rows = [
        TraceRow(
            timestamp_ns=ts, tenant=tenant, client=client, op=op, key=key,
            value_size=8 if op == "put" else 0,
        )
        for ts, op, key in steps
    ]
    return Trace.from_rows(rows, provenance={"seed": 0, "source": "unit"})


def _run_replayer(trace, client, **kw):
    from repro.sim import spawn

    sim = Simulator(seed=3)
    rep = TraceReplayer(sim, [client], trace, **kw)
    spawn(sim, rep.run(), "replay")
    sim.run(until=10_000_000.0)
    return sim, rep


def test_replayer_first_row_at_now_and_zero_gaps():
    # First row at t=0 (the current instant) and back-to-back zero-gap
    # rows must all dispatch — no off-by-one at either boundary.
    trace = _trace([
        (0, "put", "a"), (0, "get", "a"), (0, "get", "b"),
        (100, "get", "a"), (100, "delete", "a"),
    ])
    client = _EchoClient()
    sim, rep = _run_replayer(trace, client)
    assert rep.stats.ops_issued == 5
    assert rep.stats.ops_dropped == 0
    assert rep.stats.all_resolved()
    assert sorted(rep.outcomes) == [0, 1, 2, 3, 4]
    assert sim.stats.counter("workload.trace.rows_replayed").value == 5


def test_replayer_preserves_program_order_across_batches():
    steps = [(i * 10, "put" if i % 3 == 0 else "get", "k") for i in range(12)]
    trace = _trace(steps)
    client = _EchoClient()
    _sim, rep = _run_replayer(trace, client, batch=4)
    issued = [op for batch in client.batches for op in batch]
    from repro.services.wire import OP_GET, OP_PUT

    want = [OP_PUT if i % 3 == 0 else OP_GET for i in range(12)]
    assert [op for op, _k, _v in issued] == want


def test_replayer_scan_rows_stay_solo():
    trace = _trace([
        (0, "get", "a"), (0, "scan", "a"), (0, "get", "b"), (0, "get", "c"),
    ])
    client = _EchoClient()
    _sim, rep = _run_replayer(trace, client, batch=8)
    # The scan resolves via the scan path (status 0, joined payload),
    # never folded into an execute_batch pipeline.
    assert all(len(b) <= 2 for b in client.batches)
    assert rep.outcomes[1][0] == "scan"
    assert rep.stats.all_resolved()


def test_replayer_backlog_cap_drops_deterministically():
    trace = _trace([(0, "get", k) for k in ("a", "b", "c", "d", "e")])
    client = _StuckClient()
    sim, rep = _run_replayer(trace, client, max_backlog=2)
    # All five rows fire at t=0 before the worker runs: two queue, the
    # rest drop at the cap.  Drops resolve the rows (never replayed).
    assert rep.stats.ops_issued == 5
    assert rep.stats.ops_dropped == 3
    assert sim.stats.counter("workload.trace.rows_dropped").value == 3


def test_loadstats_all_resolved_accounting():
    stats = LoadStats()
    stats.ops_issued = 3
    stats.ops_dropped = 1
    assert not stats.all_resolved()
    stats.note(1, STATUS_OK)
    stats.note(1, STATUS_OK)
    assert stats.all_resolved()
