"""Unit tests: receiver-managed streaming, fault tolerance, cluster, faults."""

import pytest

from repro.cluster import Cluster
from repro.core import (
    EpochJournal,
    RvmaApi,
    RvmaStatus,
    StreamClient,
    StreamServer,
    latest_consistent_epoch,
    mpix_rewind,
)
from repro.faults import FaultInjector
from repro.network import NetworkConfig, RoutingMode

from tests.helpers import run_gen, run_gens


# --- receiver-managed streaming -----------------------------------------------


@pytest.fixture
def stream_pair():
    return Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )


def test_stream_chunks_delivered_in_order(stream_pair):
    cl = stream_pair
    server = StreamServer(RvmaApi(cl.node(1)), mailbox=0xCAFE, chunk_size=16)
    client = StreamClient(RvmaApi(cl.node(0)), server_node=1, mailbox=0xCAFE)

    def server_proc():
        yield from server.open()
        chunks = []
        for _ in range(3):
            chunk = yield from server.recv()
            chunks.append(chunk)
        return chunks

    def client_proc():
        yield 3000.0
        # Stream 48 bytes as unaligned writes: 10+22+16; the server sees
        # three full 16-byte chunks regardless of client write sizes.
        for piece in (b"0123456789", b"ABCDEFGHIJKLMNOPQRSTUV", b"WXYZ" * 4):
            op = yield from client.send(piece)
            yield op.local_done

    chunks, _ = run_gens(cl.sim, server_proc(), client_proc())
    assert b"".join(chunks) == b"0123456789" + b"ABCDEFGHIJKLMNOPQRSTUV" + b"WXYZ" * 4
    assert all(len(c) == 16 for c in chunks)


def test_stream_flush_surfaces_partial_chunk(stream_pair):
    cl = stream_pair
    server = StreamServer(RvmaApi(cl.node(1)), mailbox=0xCAFE, chunk_size=64)
    client = StreamClient(RvmaApi(cl.node(0)), server_node=1, mailbox=0xCAFE)

    def server_proc():
        yield from server.open()
        yield 10000.0  # partial data has arrived
        status = yield from server.flush()
        info = yield from server.api.wait_completion(server.win)
        return status, info.length, info.read_data()

    def client_proc():
        yield 3000.0
        op = yield from client.send(b"partial-data")
        yield op.local_done

    (status, length, data), _ = run_gens(cl.sim, server_proc(), client_proc())
    assert status is RvmaStatus.SUCCESS
    assert length == len(b"partial-data")
    assert data == b"partial-data"


def test_stream_close(stream_pair):
    cl = stream_pair
    server = StreamServer(RvmaApi(cl.node(1)), mailbox=0xCAFE, chunk_size=8)

    def proc():
        yield from server.open()
        status = yield from server.close()
        return status

    assert run_gen(cl.sim, proc()) is RvmaStatus.SUCCESS


def test_stream_validation():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="packet")
    with pytest.raises(Exception):
        StreamServer(RvmaApi(cl.node(1)), mailbox=1, chunk_size=0)


# --- fault tolerance helpers -----------------------------------------------------


def test_epoch_journal_rollback_target():
    j = EpochJournal()
    j.commit(step=1, epoch=2)
    j.commit(step=2, epoch=4)
    j.commit(step=3, epoch=6)
    assert j.rollback_target(completed_epoch=5) == 2
    assert j.rollback_target(completed_epoch=6) == 3
    assert j.rollback_target(completed_epoch=1) is None
    assert len(j) == 3


def test_epoch_journal_requires_increasing_steps():
    j = EpochJournal()
    j.commit(1, 1)
    with pytest.raises(ValueError):
        j.commit(1, 2)


def test_mpix_rewind_returns_epoch_data(rvma_pair):
    cl = rvma_pair
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def receiver():
        win = yield from api1.init_window(0x200, epoch_threshold=16)
        yield from api1.post_buffer(win, size=16)
        yield from api1.post_buffer(win, size=16)
        yield from api1.wait_completion(win)
        yield from api1.wait_completion(win)
        one_back = yield from mpix_rewind(api1, win, 1)
        two_back = yield from mpix_rewind(api1, win, 2)
        missing = yield from mpix_rewind(api1, win, 9)
        last = yield from latest_consistent_epoch(api1, win)
        return one_back, two_back, missing, last

    def sender():
        yield 2000.0
        for tagbyte in (b"A", b"B"):
            op = yield from api0.put(1, 0x200, data=tagbyte * 16)
            yield op.local_done
            yield 3000.0

    (one, two, missing, last), _ = run_gens(cl.sim, receiver(), sender())
    assert one.data == b"B" * 16 and one.epoch == 1
    assert two.data == b"A" * 16 and two.epoch == 0
    assert missing is None
    assert last == 1  # two epochs completed: 0 and 1; epoch 2 in progress


# --- cluster builder ----------------------------------------------------------------


def test_cluster_build_validates():
    with pytest.raises(ValueError):
        Cluster.build(n_nodes=4, topology="star", nic_type="rvma", fidelity="bogus")
    with pytest.raises(ValueError):
        Cluster.build(n_nodes=4, topology="star", nic_type="quantum")


def test_cluster_build_both_fidelities():
    for fidelity in ("flow", "packet"):
        cl = Cluster.build(n_nodes=4, topology="dragonfly", nic_type="rdma", fidelity=fidelity)
        assert cl.n_nodes == 4
        assert cl.node(2).node_id == 2
        assert cl.nic_type == "rdma"


def test_cluster_topology_instance_must_match_nodes():
    from repro.network import make_topology

    topo = make_topology("star", 8)
    with pytest.raises(ValueError):
        Cluster.build(n_nodes=4, topology=topo)


# --- fault injector ------------------------------------------------------------------


def test_fail_node_at_drops_subsequent_traffic():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    inj.fail_node_at(1, time=1000.0)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x1, 8, b"12345678")
        yield op.local_done
        yield 5000.0

    run_gen(cl.sim, sender())
    assert inj.node_is_dead(1)
    assert inj.log.node_failures == [(1, 1000.0)]
    assert cl.sim.stats.counter("rvma1.rx_dropped_failed").value >= 1


def test_drop_messages_probabilistically():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    inj.drop_messages(1.0)  # drop everything

    def sender():
        op = cl.node(0).nic.hw_put(1, 0x1, 8, b"12345678")
        yield op.local_done
        yield 5000.0

    run_gen(cl.sim, sender())
    assert inj.log.messages_dropped >= 1
    inj.clear()
    assert cl.fabric.fault_filter is None


def test_corrupt_payloads_flips_bytes():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    inj.corrupt_payloads(1.0)
    got = {}

    def receiver():
        nic = cl.node(1).nic
        yield nic.hw_init_window(0x1)
        from repro.memory.buffer import HostBuffer

        buf = HostBuffer.allocate(cl.node(1).memory, 8)
        slot = cl.node(1).memory.alloc(64, align=64)
        cl.node(1).memory.write(slot.base, b"\x00" * 16)
        yield nic.hw_post_buffer(0x1, buf, 8, slot.base, slot.base + 8)
        yield cl.node(1).waiter.wait_for_nonzero_u64(slot.base)
        got["data"] = buf.contents()

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x1, 8, b"\x00" * 8)
        yield op.local_done

    run_gens(cl.sim, receiver(), sender())
    assert got["data"][0] == 0xFF  # first byte flipped
    assert inj.log.payloads_corrupted >= 1


def test_fault_injector_validates_probability():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    with pytest.raises(ValueError):
        inj.drop_messages(1.5)
    with pytest.raises(ValueError):
        inj.corrupt_payloads(-0.1)
