"""Unit tests for the component/port model (the SST element surface)."""

import pytest

from repro.sim import Component, Link, Simulator


class _Probe(Component):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.inbox = []
        self.rx = self.add_port("rx", self.inbox.append)


def test_component_registration_and_ports():
    sim = Simulator()
    c = _Probe(sim, "probe0")
    assert c in sim.components
    assert c.port("rx") is c.rx
    assert c.rx.full_name == "probe0.rx"
    with pytest.raises(ValueError):
        c.add_port("rx")  # duplicate name


def test_component_stats_are_namespaced():
    sim = Simulator()
    a, b = _Probe(sim, "a"), _Probe(sim, "b")
    a.stat("events").add(2)
    b.stat("events").add(5)
    assert sim.stats.counters() == {"a.events": 2, "b.events": 5}


def test_component_trace_respects_enablement():
    sim = Simulator(trace=True)
    c = _Probe(sim, "traced")
    c.trace("something happened", detail=1)
    assert len(sim.tracer.filter("traced")) == 1
    sim2 = Simulator()  # tracing off by default
    c2 = _Probe(sim2, "silent")
    c2.trace("dropped")
    assert len(sim2.tracer) == 0


def test_port_without_handler_raises_on_delivery():
    sim = Simulator()
    a = _Probe(sim, "a")
    b = Component(sim, "bare")
    p = b.add_port("in")  # no handler installed
    Link(sim, a.rx, p, latency=1.0)
    a.rx.send("x")
    with pytest.raises(ValueError):
        sim.run()


def test_unknown_port_lookup_raises():
    sim = Simulator()
    c = _Probe(sim, "c")
    with pytest.raises(KeyError):
        c.port("nope")
