"""Unit tests for packet-fabric switch internals and load-aware routing."""

import pytest

from repro.network import (
    MTU,
    NetworkConfig,
    PacketFabric,
    RoutingMode,
    make_topology,
)
from repro.network.switch import RoutedPacket
from repro.sim import Simulator
from repro.units import gbps


def test_crossbar_adds_traversal_latency():
    """Delivery through a switch includes pipeline + crossbar time."""
    sim = Simulator()
    cfg = NetworkConfig(
        link_bw=gbps(80), injection_latency=10.0, switch_latency=50.0,
        crossbar_factor=2.0,
    )
    fab = PacketFabric(sim, make_topology("star", 2), cfg)
    got = []
    fab.attach(1, got.append)
    fab.send(0, 1, 1000)
    sim.run()
    wire = 1000 + 30
    ser = wire / cfg.link_bw
    xbar = wire / cfg.crossbar_bw
    expect = (10.0 + ser) + (50.0 + xbar) + (10.0 + ser)
    assert got[0].info.arrival_time == pytest.approx(expect)


def test_switch_tracks_forwarded_packets_per_hop():
    sim = Simulator()
    topo = make_topology("fattree", 16)
    fab = PacketFabric(sim, topo, NetworkConfig(routing=RoutingMode.STATIC))
    fab.attach(15, lambda d: None)
    fab.send(0, 15, MTU * 2)  # 2 packets, 5-switch path
    sim.run()
    total_forwards = sum(sw.packets_forwarded for sw in fab.switches)
    assert total_forwards == 2 * 5


def test_packet_mode_adaptive_is_load_aware():
    """With one candidate congested, adaptive injection prefers others."""
    sim = Simulator()
    topo = make_topology("fattree", 16)
    fab = PacketFabric(sim, topo, NetworkConfig(routing=RoutingMode.ADAPTIVE))
    fab.attach(15, lambda d: None)
    fab.attach(14, lambda d: None)
    # Congest the static path to 15 with background traffic.
    static = topo.static_path(topo.node_switch(0), topo.node_switch(15))
    for _ in range(4):
        fab.send(0, 15, MTU * 4, mode=RoutingMode.STATIC)
    # Now adaptive sends should mostly dodge the congested static path.
    choices = [fab.select_path(0, 15, RoutingMode.ADAPTIVE).path for _ in range(8)]
    dodged = sum(1 for p in choices if p != static)
    assert dodged >= 6


def test_routed_packet_hop_progression():
    sim = Simulator()
    fab = PacketFabric(sim, make_topology("star", 2))
    captured = []
    fab.attach(1, lambda d: captured.append(d))
    msg = fab.send(0, 1, 64)
    sim.run()
    assert captured[0].message is msg
    assert captured[0].info.hops == 1  # one switch on the star


def test_deliveries_share_message_object_across_fragments():
    sim = Simulator()
    fab = PacketFabric(sim, make_topology("star", 2))
    got = []
    fab.attach(1, got.append)
    fab.send(0, 1, MTU * 3)
    sim.run()
    messages = {id(d.message) for d in got}
    assert len(messages) == 1
    assert sorted(d.packet.seq for d in got) == [0, 1, 2]
