"""Unit tests for the Verbs/UCX software layers, handshake and dispatch."""

import pytest

from repro.memory.buffer import HostBuffer
from repro.nic.cq import CqKind
from repro.network.routing import RoutingMode
from repro.rdma import (
    CompletionMode,
    CqDispatcher,
    UcpEndpoint,
    UnsafeCompletionError,
    VerbsEndpoint,
    check_mode_safety,
    client_request_region,
    pack_region,
    server_serve_region,
    spec_compliant_mode,
    unpack_region,
)
from repro.memory.buffer import MemoryRegion

from tests.helpers import run_gen, run_gens


# --- completion-mode safety ---------------------------------------------------


def test_last_byte_poll_refused_on_adaptive():
    with pytest.raises(UnsafeCompletionError):
        check_mode_safety(CompletionMode.LAST_BYTE_POLL, RoutingMode.ADAPTIVE)
    # explicit opt-in for demonstrating the bug
    check_mode_safety(CompletionMode.LAST_BYTE_POLL, RoutingMode.ADAPTIVE, allow_unsafe=True)
    check_mode_safety(CompletionMode.LAST_BYTE_POLL, RoutingMode.STATIC)
    check_mode_safety(CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE)


def test_spec_compliant_mode_is_send_recv():
    assert spec_compliant_mode(RoutingMode.ADAPTIVE) is CompletionMode.SEND_RECV


# --- region descriptor wire format ------------------------------------------------


def test_region_pack_unpack_roundtrip():
    mr = MemoryRegion(addr=0xDEADBEEF00, length=4096, rkey=0x1234, node_id=3)
    data = pack_region(mr)
    assert len(data) == 24
    back = unpack_region(data, node_id=3)
    assert (back.addr, back.length, back.rkey) == (mr.addr, mr.length, mr.rkey)


# --- handshake -----------------------------------------------------------------


def test_handshake_transfers_real_region(rdma_pair):
    cl = rdma_pair
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(1))

    def server():
        buffer, region = yield from server_serve_region(v1, client=0)
        return buffer, region

    def client():
        hs = yield from client_request_region(v0, server=1, size=4096)
        return hs

    (buffer, region), hs = run_gens(cl.sim, server(), client())
    # The client learned the server's *raw* physical address — the
    # exposure RVMA's mailboxes remove.
    assert hs.region.addr == buffer.addr == region.addr
    assert hs.region.rkey == region.rkey
    assert hs.region.length == 4096
    assert hs.elapsed > 0


def test_handshake_then_write_lands_in_served_buffer(rdma_pair):
    cl = rdma_pair
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(1))

    def server():
        buffer, _region = yield from server_serve_region(v1, client=0)
        yield 30000.0
        return buffer.read(0, 11)

    def client():
        hs = yield from client_request_region(v0, server=1, size=64)
        op = yield from v0.rdma_write(1, hs.region, 11, b"hello world")
        yield op.done

    data, _ = run_gens(cl.sim, server(), client())
    assert data == b"hello world"


# --- verbs endpoint ----------------------------------------------------------------


def test_verbs_write_bounds_check(rdma_pair):
    cl = rdma_pair
    v0 = VerbsEndpoint(cl.node(0))
    region = MemoryRegion(addr=0x1000, length=64, rkey=1, node_id=1)

    def proc():
        yield from v0.rdma_write(1, region, 128)

    with pytest.raises(ValueError):
        run_gen(cl.sim, proc())


def test_verbs_reg_mr_cost_scales_with_size(rdma_pair):
    cl = rdma_pair
    v1 = VerbsEndpoint(cl.node(1))
    times = []

    def proc(size):
        t0 = cl.sim.now
        buf = HostBuffer.allocate(cl.node(1).memory, size)
        yield from v1.reg_mr(buf)
        times.append(cl.sim.now - t0)

    run_gen(cl.sim, proc(1024))
    run_gen(cl.sim, proc(1024 * 1024))
    assert times[1] > times[0]


def test_verbs_requires_rdma_nic(rvma_pair):
    with pytest.raises(TypeError):
        VerbsEndpoint(rvma_pair.node(0))


def test_write_with_completion_sequence(rdma_pair):
    cl = rdma_pair
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(1))
    state = {}

    def server():
        buffer, _ = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl.node(1).memory, 64)
        yield from v1.post_recv(ctl, wr_id=3, tag=3)
        entry = yield from v1.wait_write_completion(
            buffer, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE, ctl, wr_id=3
        )
        state["done_at"] = cl.sim.now
        return entry, buffer

    def client():
        hs = yield from client_request_region(v0, server=1, size=256)
        yield from v0.write_with_completion(
            1, hs.region, 200, b"c" * 200, mode=RoutingMode.ADAPTIVE,
            completion=CompletionMode.SEND_RECV, wr_id=3,
        )

    (entry, buffer), _ = run_gens(cl.sim, server(), client())
    assert entry.kind is CqKind.RECV
    assert buffer.read(0, 200) == b"c" * 200


def test_wait_write_completion_needs_ctl_buffer(rdma_pair):
    cl = rdma_pair
    v1 = VerbsEndpoint(cl.node(1))
    buf = HostBuffer.allocate(cl.node(1).memory, 64)

    def proc():
        yield from v1.wait_write_completion(
            buf, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE, None
        )

    with pytest.raises(ValueError):
        run_gen(cl.sim, proc())


# --- dispatcher ---------------------------------------------------------------------


def test_dispatcher_routes_by_predicate(rdma_pair):
    cl = rdma_pair
    nic = cl.node(0).nic
    disp = CqDispatcher(cl.sim, nic.cq)
    from repro.nic.cq import CqEntry

    def waiter(wr):
        entry = yield disp.wait_wr(wr)
        return entry.wr_id

    def pusher():
        yield 10.0
        nic.cq.push(CqEntry(CqKind.RECV, op_id=1, wr_id=9))
        yield 10.0
        nic.cq.push(CqEntry(CqKind.RECV, op_id=2, wr_id=7))

    r7, r9, _ = run_gens(cl.sim, waiter(7), waiter(9), pusher())
    assert (r7, r9) == (7, 9)


def test_dispatcher_keeps_unclaimed_entries(rdma_pair):
    cl = rdma_pair
    nic = cl.node(0).nic
    disp = CqDispatcher(cl.sim, nic.cq)
    from repro.nic.cq import CqEntry

    def early_pusher_then_waiter():
        # The entry arrives while someone waits for a different wr_id...
        nic.cq.push(CqEntry(CqKind.RECV, op_id=1, wr_id=5))
        nic.cq.push(CqEntry(CqKind.RECV, op_id=2, wr_id=6))
        e6 = yield disp.wait_wr(6)
        # ...and the other entry is still claimable afterwards.
        e5 = yield disp.wait_wr(5)
        return e5.wr_id, e6.wr_id

    assert run_gen(cl.sim, early_pusher_then_waiter()) == (5, 6)


# --- UCX ----------------------------------------------------------------------------


def test_ucp_put_and_flush(rdma_pair):
    cl = rdma_pair
    u0, v1 = UcpEndpoint(cl.node(0)), VerbsEndpoint(cl.node(1))
    state = {}

    def server():
        buf = HostBuffer.allocate(cl.node(1).memory, 128)
        state["mr"] = yield cl.node(1).nic.hw_reg_mr(buf)
        yield 50000.0
        return buf

    def client():
        yield 2000.0
        mr = state["mr"]
        yield from u0.put_nbi(1, mr, 64, b"U" * 64)
        yield from u0.put_nbi(1, mr, 32, b"V" * 32, offset=64)
        n = yield from u0.flush()
        return n

    buf, n = run_gens(cl.sim, server(), client())
    assert n == 2
    assert buf.read(0, 64) == b"U" * 64
    assert buf.read(64, 32) == b"V" * 32


def test_ucp_flush_empty_is_cheap(rdma_pair):
    cl = rdma_pair
    u0 = UcpEndpoint(cl.node(0))

    def proc():
        n = yield from u0.flush()
        return n, cl.sim.now

    n, t = run_gen(cl.sim, proc())
    assert n == 0
    assert t == pytest.approx(u0.costs.flush)


def test_ucp_tag_send_recv(rdma_pair):
    cl = rdma_pair
    u0, u1 = UcpEndpoint(cl.node(0)), UcpEndpoint(cl.node(1))

    def receiver():
        buf = HostBuffer.allocate(cl.node(1).memory, 64)
        yield from u1.tag_recv_arm(buf, tag=44)
        entry = yield from u1.tag_recv_wait(tag=44)
        return entry, buf.read(0, 5)

    def sender():
        yield 2000.0
        op = yield from u0.tag_send(1, 5, b"tagme", tag=44)
        yield op.done

    (entry, data), _ = run_gens(cl.sim, receiver(), sender())
    assert entry.kind is CqKind.RECV and entry.wr_id == 44
    assert data == b"tagme"


def test_ucp_put_beyond_region_rejected(rdma_pair):
    cl = rdma_pair
    u0 = UcpEndpoint(cl.node(0))
    mr = MemoryRegion(addr=0x1000, length=32, rkey=1, node_id=1)

    def proc():
        yield from u0.put_nbi(1, mr, 64)

    with pytest.raises(ValueError):
        run_gen(cl.sim, proc())
