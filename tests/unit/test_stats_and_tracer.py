"""Edge cases for the stats primitives and the flat tracer.

Covers the seams the observability layer leans on: Histogram merge
semantics (empty / single-sample / binning mismatch), Summary.merge
(Chan's combine must match single-pass accumulation), Tracer.filter
semantics, and the clock-binding regression — a standalone tracer must
start stamping simulated time once attached to a running engine.
"""

import math

import pytest

from repro.sim import Simulator
from repro.sim.stats import Histogram, Summary
from repro.sim.trace import Tracer


# --- Histogram -----------------------------------------------------------


def test_histogram_empty():
    h = Histogram("h", 0.0, 10.0, nbins=5)
    assert h.count == 0
    assert h.bins == [0] * 5
    assert h.underflow == 0 and h.overflow == 0
    assert h.bin_edges() == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]


def test_histogram_single_sample():
    h = Histogram("h", 0.0, 10.0, nbins=5)
    h.add(4.0)
    assert h.count == 1
    assert h.bins == [0, 0, 1, 0, 0]


def test_histogram_boundary_samples():
    h = Histogram("h", 0.0, 10.0, nbins=5)
    h.add(0.0)       # lo is inclusive -> first bin
    h.add(10.0)      # hi is exclusive -> overflow
    h.add(-0.001)    # below lo -> underflow
    assert h.bins[0] == 1
    assert h.overflow == 1
    assert h.underflow == 1
    assert h.count == 3


def test_histogram_merge_empty_into_populated():
    a = Histogram("a", 0.0, 10.0, nbins=5)
    a.add(1.0)
    b = Histogram("b", 0.0, 10.0, nbins=5)
    a.merge(b)
    assert a.count == 1 and a.bins[0] == 1


def test_histogram_merge_sums_everything():
    a = Histogram("a", 0.0, 10.0, nbins=5)
    b = Histogram("b", 0.0, 10.0, nbins=5)
    for x in (1.0, 3.0, 11.0):
        a.add(x)
    for x in (1.5, -2.0):
        b.add(x)
    a.merge(b)
    assert a.count == 5
    assert a.bins == [2, 1, 0, 0, 0]
    assert a.overflow == 1 and a.underflow == 1


def test_histogram_merge_rejects_binning_mismatch():
    a = Histogram("a", 0.0, 10.0, nbins=5)
    with pytest.raises(ValueError):
        a.merge(Histogram("b", 0.0, 10.0, nbins=6))
    with pytest.raises(ValueError):
        a.merge(Histogram("c", 0.0, 20.0, nbins=5))


def test_histogram_rejects_degenerate_shape():
    with pytest.raises(ValueError):
        Histogram("bad", 5.0, 5.0)
    with pytest.raises(ValueError):
        Histogram("bad", 0.0, 1.0, nbins=0)


# --- Summary.merge -------------------------------------------------------


def test_summary_merge_matches_single_pass():
    xs = [1.0, 2.5, -3.0, 7.25, 0.0, 4.5]
    ref = Summary("ref")
    for x in xs:
        ref.add(x)
    a, b = Summary("a"), Summary("b")
    for x in xs[:2]:
        a.add(x)
    for x in xs[2:]:
        b.add(x)
    a.merge(b)
    assert a.n == ref.n
    assert math.isclose(a.mean, ref.mean)
    assert math.isclose(a.variance, ref.variance)
    assert a.min == ref.min and a.max == ref.max
    assert math.isclose(a.total, ref.total)


def test_summary_merge_empty_sides():
    a, b = Summary("a"), Summary("b")
    b.add(3.0)
    # empty.merge(populated) adopts the populated stats
    a.merge(b)
    assert (a.n, a.mean, a.min, a.max) == (1, 3.0, 3.0, 3.0)
    # populated.merge(empty) is a no-op
    a.merge(Summary("c"))
    assert (a.n, a.mean) == (1, 3.0)


def test_summary_empty_properties():
    s = Summary("s")
    assert s.n == 0 and s.mean == 0.0 and s.variance == 0.0 and s.stddev == 0.0


# --- Tracer filter semantics --------------------------------------------


def test_tracer_filter_prefix_and_contains():
    t = Tracer(enabled=True)
    t.record("nic.rvma", "place done", n=1)
    t.record("nic.rdma", "write done")
    t.record("fabric", "deliver place")
    assert len(t.filter("nic")) == 2
    assert len(t.filter("nic.rvma")) == 1
    assert len(t.filter(contains="place")) == 2
    assert len(t.filter("nic", contains="place")) == 1
    assert t.filter("nosuch") == []


def test_tracer_disabled_records_nothing():
    t = Tracer(enabled=False)
    t.record("cat", "msg")
    assert len(t) == 0


# --- Clock binding regression --------------------------------------------


def test_standalone_tracer_stamps_zero_until_bound():
    t = Tracer(enabled=True)
    assert not t.clock_bound
    t.record("cat", "early")
    assert t.entries[0].time == 0.0


def test_engine_binds_swapped_in_tracer_clock():
    """A tracer built standalone then swapped into a sim must pick up
    simulated time at component registration (regression: entries kept
    stamping 0.0 forever)."""
    sim = Simulator()
    standalone = Tracer(enabled=True)
    sim.tracer = standalone
    sim.register_component(object())  # any component attach binds the clock
    assert standalone.clock_bound
    sim.schedule(5.0, standalone.record, "cat", "later")
    sim.run()
    assert standalone.entries[-1].time == 5.0


def test_bind_clock_does_not_clobber_existing_clock():
    t = Tracer(enabled=True, clock=lambda: 42.0)
    t.bind_clock(lambda: 7.0)  # already bound -> no-op
    t.record("cat", "msg")
    assert t.entries[0].time == 42.0
    t.bind_clock(lambda: 7.0, force=True)
    t.record("cat", "msg2")
    assert t.entries[1].time == 7.0
