"""Unit tests for the coroutine process layer."""

import pytest

from repro.sim import AllOf, Future, SimProcess, Simulator, spawn


def test_sleep_advances_time():
    sim = Simulator()

    def proc():
        yield 10.0
        yield 5
        return sim.now

    p = spawn(sim, proc())
    sim.run()
    assert p.finished and p.result == 15.0


def test_future_wait_receives_value():
    sim = Simulator()
    fut = Future(sim)

    def proc():
        value = yield fut
        return value

    p = spawn(sim, proc())
    sim.schedule(7.0, fut.resolve, "payload")
    sim.run()
    assert p.result == "payload"
    assert sim.now == 7.0


def test_wait_on_already_resolved_future():
    sim = Simulator()
    fut = Future(sim)
    fut.resolve(99)

    def proc():
        value = yield fut
        return value

    p = spawn(sim, proc())
    sim.run()
    assert p.result == 99


def test_double_resolve_raises():
    sim = Simulator()
    fut = Future(sim)
    fut.resolve(1)
    with pytest.raises(RuntimeError):
        fut.resolve(2)


def test_allof_collects_values_in_order():
    sim = Simulator()
    futs = [Future(sim) for _ in range(3)]

    def proc():
        values = yield AllOf(futs)
        return values

    p = spawn(sim, proc())
    # Resolve out of order; values must come back in declaration order.
    sim.schedule(3.0, futs[2].resolve, "c")
    sim.schedule(1.0, futs[0].resolve, "a")
    sim.schedule(2.0, futs[1].resolve, "b")
    sim.run()
    assert p.result == ["a", "b", "c"]
    assert sim.now == 3.0


def test_allof_empty_resolves_immediately():
    sim = Simulator()

    def proc():
        values = yield AllOf([])
        return values

    p = spawn(sim, proc())
    sim.run()
    assert p.result == []


def test_process_waits_on_subprocess():
    sim = Simulator()

    def child():
        yield 20.0
        return "done"

    def parent():
        c = spawn(sim, child())
        result = yield c
        return result

    p = spawn(sim, parent())
    sim.run()
    assert p.result == "done"
    assert sim.now == 20.0


def test_yield_from_subgenerator():
    sim = Simulator()

    def inner():
        yield 5.0
        return 42

    def outer():
        value = yield from inner()
        yield 5.0
        return value + 1

    p = spawn(sim, outer())
    sim.run()
    assert p.result == 43
    assert sim.now == 10.0


def test_unsupported_yield_type_raises():
    sim = Simulator()

    def proc():
        yield "not-a-waitable"

    spawn(sim, proc())
    with pytest.raises(TypeError):
        sim.run()


def test_exception_in_process_propagates():
    sim = Simulator()

    def proc():
        yield 1.0
        raise ValueError("boom")

    spawn(sim, proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_done_future_multiple_waiters():
    sim = Simulator()
    fut = Future(sim)
    seen = []

    def waiter(label):
        value = yield fut
        seen.append((label, value))

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    sim.schedule(4.0, fut.resolve, 7)
    sim.run()
    assert sorted(seen) == [("a", 7), ("b", 7)]
