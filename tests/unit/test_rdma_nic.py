"""Unit tests for the RDMA baseline NIC and completion queue."""

import pytest

from repro.memory.buffer import HostBuffer
from repro.nic.cq import CompletionQueue, CqEntry, CqKind
from repro.nic.rdma import MAX_IMM_PAYLOAD, RdmaError
from repro.sim import Simulator

from tests.helpers import run_gen, run_gens


# --- completion queue ----------------------------------------------------------


def test_cq_push_poll_fifo():
    sim = Simulator()
    cq = CompletionQueue(sim)
    for i in range(3):
        cq.push(CqEntry(CqKind.RECV, op_id=i))
    entries = cq.poll(2)
    assert [e.op_id for e in entries] == [0, 1]
    assert len(cq) == 1


def test_cq_wait_resolves_on_push():
    sim = Simulator()
    cq = CompletionQueue(sim)

    def waiter():
        entry = yield cq.wait()
        return entry.op_id

    sim.schedule(10.0, cq.push, CqEntry(CqKind.RECV, op_id=42))
    assert run_gen(sim, waiter()) == 42


def test_cq_wait_drains_backlog_first():
    sim = Simulator()
    cq = CompletionQueue(sim)
    cq.push(CqEntry(CqKind.RECV, op_id=1))

    def waiter():
        entry = yield cq.wait()
        return entry.op_id

    assert run_gen(sim, waiter()) == 1


def test_cq_overflow_drops_and_counts():
    sim = Simulator()
    cq = CompletionQueue(sim, capacity=2)
    for i in range(5):
        cq.push(CqEntry(CqKind.RECV, op_id=i))
    assert len(cq) == 2
    assert cq.overflows == 3
    assert cq.total_entries == 5


# --- memory regions -----------------------------------------------------------


def test_reg_and_dereg_mr(rdma_pair):
    cl = rdma_pair
    node = cl.node(0)

    def proc():
        buf = HostBuffer.allocate(node.memory, 128)
        mr = yield node.nic.hw_reg_mr(buf)
        ok = yield node.nic.hw_dereg_mr(mr.rkey)
        gone = yield node.nic.hw_dereg_mr(mr.rkey)
        return mr, ok, gone

    mr, ok, gone = run_gen(cl.sim, proc())
    assert mr.length == 128 and mr.rkey > 0
    assert ok is True and gone is False


def test_mr_table_capacity(rdma_pair):
    cl = rdma_pair
    node = cl.node(0)
    node.nic.cfg.max_memory_regions = 1

    def proc():
        b1 = HostBuffer.allocate(node.memory, 16)
        b2 = HostBuffer.allocate(node.memory, 16)
        mr1 = yield node.nic.hw_reg_mr(b1)
        mr2 = yield node.nic.hw_reg_mr(b2)
        return mr1, mr2

    mr1, mr2 = run_gen(cl.sim, proc())
    assert not isinstance(mr1, Exception)
    assert isinstance(mr2, RdmaError)


# --- writes -----------------------------------------------------------------


def test_write_places_data_and_acks(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)

    def receiver():
        buf = HostBuffer.allocate(target.memory, 256)
        mr = yield target.nic.hw_reg_mr(buf)
        return buf, mr

    def sender(get_mr):
        yield 2000.0
        buf, mr = get_mr()
        op = cl.node(0).nic.hw_write(1, mr.addr + 8, mr.rkey, 100, b"W" * 100)
        entry = yield op.done
        return entry, buf

    state = {}

    def recv_wrapper():
        state["result"] = yield from receiver()

    (_, (entry, buf)) = run_gens(
        cl.sim, recv_wrapper(), sender(lambda: state["result"])
    )
    assert entry.kind is CqKind.WRITE_DONE and entry.ok
    assert buf.read(8, 100) == b"W" * 100
    # RDMA gives the *target* no completion signal for plain writes.
    assert len(target.nic.cq) == 0


def test_write_bad_rkey_fails(rdma_pair):
    cl = rdma_pair

    def sender():
        op = cl.node(0).nic.hw_write(1, 0x5000, 999, 10, b"x" * 10)
        entry = yield op.done
        return entry

    entry = run_gen(cl.sim, sender())
    assert entry.kind is CqKind.ERROR and not entry.ok
    assert cl.sim.stats.counter("rdma1.writes_rejected").value == 1


def test_write_beyond_region_fails(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)
    state = {}

    def receiver():
        buf = HostBuffer.allocate(target.memory, 64)
        state["mr"] = yield target.nic.hw_reg_mr(buf)

    def sender():
        yield 2000.0
        mr = state["mr"]
        op = cl.node(0).nic.hw_write(1, mr.addr + 32, mr.rkey, 64, b"x" * 64)
        entry = yield op.done
        return entry

    _, entry = run_gens(cl.sim, receiver(), sender())
    assert not entry.ok


def test_write_with_immediate_notifies_target(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)
    state = {}

    def receiver():
        buf = HostBuffer.allocate(target.memory, 64)
        state["mr"] = yield target.nic.hw_reg_mr(buf)
        entry = yield target.nic.cq.wait()
        return entry

    def sender():
        yield 2000.0
        mr = state["mr"]
        op = cl.node(0).nic.hw_write(1, mr.addr, mr.rkey, 32, b"i" * 32, imm=0x77)
        yield op.done

    entry, _ = run_gens(cl.sim, receiver(), sender())
    assert entry.kind is CqKind.WRITE_IMM and entry.imm == 0x77


def test_write_with_immediate_size_limit(rdma_pair):
    cl = rdma_pair
    with pytest.raises(RdmaError):
        cl.node(0).nic.hw_write(1, 0x1000, 1, MAX_IMM_PAYLOAD + 1, imm=1)


def test_unsignaled_write_skips_cq(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)
    state = {}

    def receiver():
        buf = HostBuffer.allocate(target.memory, 64)
        state["mr"] = yield target.nic.hw_reg_mr(buf)

    def sender():
        yield 2000.0
        mr = state["mr"]
        op = cl.node(0).nic.hw_write(1, mr.addr, mr.rkey, 8, b"u" * 8, signaled=False)
        entry = yield op.done
        return entry

    _, entry = run_gens(cl.sim, receiver(), sender())
    assert entry.ok
    assert len(cl.node(0).nic.cq) == 0  # no initiator CQE


# --- send/recv ------------------------------------------------------------------


def test_send_consumes_posted_recv(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)

    def receiver():
        buf = HostBuffer.allocate(target.memory, 64)
        yield target.nic.hw_post_recv(buf, wr_id=5)
        entry = yield target.nic.cq.wait()
        return entry, buf

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_send(1, 16, b"s" * 16)
        yield op.done

    (entry, buf), _ = run_gens(cl.sim, receiver(), sender())
    assert entry.kind is CqKind.RECV and entry.wr_id == 5 and entry.size == 16
    assert buf.read(0, 16) == b"s" * 16
    assert len(target.nic.recv_queue) == 0


def test_send_rnr_retries_until_recv_posted(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)

    def receiver():
        yield 10000.0  # post late: first send attempt must RNR
        buf = HostBuffer.allocate(target.memory, 64)
        yield target.nic.hw_post_recv(buf)
        entry = yield target.nic.cq.wait()
        return entry

    def sender():
        op = cl.node(0).nic.hw_send(1, 8, b"r" * 8)
        entry = yield op.done
        return entry

    recv_entry, send_entry = run_gens(cl.sim, receiver(), sender())
    assert recv_entry.kind is CqKind.RECV
    assert send_entry.ok
    assert cl.sim.stats.counter("rdma1.rnr_drops").value >= 1
    assert cl.sim.stats.counter("rdma0.rnr_retries").value >= 1


def test_send_tag_matching_claims_correct_recv(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)
    state = {}

    def receiver():
        buf_a = HostBuffer.allocate(target.memory, 64)
        buf_b = HostBuffer.allocate(target.memory, 64)
        yield target.nic.hw_post_recv(buf_a, wr_id=1, tag=100)
        yield target.nic.hw_post_recv(buf_b, wr_id=2, tag=200)
        e1 = yield target.nic.cq.wait()
        e2 = yield target.nic.cq.wait()
        state["bufs"] = (buf_a, buf_b)
        return e1, e2

    def sender():
        yield 2000.0
        # Send to tag 200 FIRST: it must land in buf_b, not buf_a.
        op = cl.node(0).nic.hw_send(1, 4, b"BBBB", tag=200)
        yield op.done
        op = cl.node(0).nic.hw_send(1, 4, b"AAAA", tag=100)
        yield op.done

    (e1, _e2), _ = run_gens(cl.sim, receiver(), sender())
    buf_a, buf_b = state["bufs"]
    assert buf_b.read(0, 4) == b"BBBB"
    assert buf_a.read(0, 4) == b"AAAA"
    assert e1.wr_id == 2  # first completion was the tag-200 recv


def test_recv_too_small_fails_send(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)

    def receiver():
        buf = HostBuffer.allocate(target.memory, 8)
        yield target.nic.hw_post_recv(buf)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_send(1, 64, b"t" * 64)
        entry = yield op.done
        return entry

    _, entry = run_gens(cl.sim, receiver(), sender())
    assert not entry.ok
    assert cl.sim.stats.counter("rdma1.recv_too_small").value == 1


# --- reads ----------------------------------------------------------------------


def test_read_fetches_remote_data(rdma_pair):
    cl = rdma_pair
    target = cl.node(1)
    state = {}

    def receiver():
        buf = HostBuffer.allocate(target.memory, 128)
        buf.write(0, bytes(range(128)))
        state["mr"] = yield target.nic.hw_reg_mr(buf)

    def sender():
        yield 2000.0
        mr = state["mr"]
        dest = HostBuffer.allocate(cl.node(0).memory, 64)
        op = cl.node(0).nic.hw_read(1, mr.addr + 16, mr.rkey, 64, dest)
        entry = yield op.done
        return entry, dest.contents()

    _, (entry, data) = run_gens(cl.sim, receiver(), sender())
    assert entry.kind is CqKind.READ_DONE and entry.ok
    assert data == bytes(range(16, 80))


def test_read_bad_region_errors(rdma_pair):
    cl = rdma_pair

    def sender():
        dest = HostBuffer.allocate(cl.node(0).memory, 16)
        op = cl.node(0).nic.hw_read(1, 0x9000, 123, 16, dest)
        entry = yield op.done
        return entry

    entry = run_gen(cl.sim, sender())
    assert entry.kind is CqKind.ERROR


def test_read_into_too_small_buffer_rejected(rdma_pair):
    cl = rdma_pair
    dest = HostBuffer.allocate(cl.node(0).memory, 8)
    with pytest.raises(RdmaError):
        cl.node(0).nic.hw_read(1, 0x1000, 1, 64, dest)


def test_send_rnr_exhaustion_fails_op(rdma_pair):
    cl = rdma_pair
    cl.node(0).nic.cfg.rnr_retries = 2
    cl.node(0).nic.cfg.rnr_timeout = 500.0

    def sender():
        op = cl.node(0).nic.hw_send(1, 8, b"x" * 8)  # no recv ever posted
        entry = yield op.done
        return entry

    entry = run_gen(cl.sim, sender())
    assert entry.kind is CqKind.ERROR and not entry.ok
    assert cl.sim.stats.counter("rdma0.rnr_retries").value == 2
    assert cl.sim.stats.counter("rdma1.rnr_drops").value == 3  # initial + 2 retries
