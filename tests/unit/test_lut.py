"""Unit tests for the RVMA mailbox lookup table."""

import pytest

from repro.memory.buffer import HostBuffer, PostedBuffer
from repro.memory.memory import NodeMemory
from repro.nic.lut import (
    BufferMode,
    EpochType,
    LutError,
    MailboxLUT,
)


def _posted(mem, size=64):
    buf = HostBuffer.allocate(mem, size)
    return PostedBuffer(buffer=buf, notification_addr=0, length_addr=8, threshold=size)


@pytest.fixture
def mem():
    return NodeMemory()


def test_init_and_single_probe_lookup(mem):
    lut = MailboxLUT()
    entry = lut.init_entry(0xABC, EpochType.EPOCH_BYTES)
    assert lut.lookup(0xABC) is entry
    assert lut.lookup(0xDEF) is None
    assert lut.lookups == 2


def test_duplicate_init_rejected(mem):
    lut = MailboxLUT()
    lut.init_entry(1, EpochType.EPOCH_BYTES)
    with pytest.raises(LutError):
        lut.init_entry(1, EpochType.EPOCH_BYTES)


def test_closed_window_can_be_reopened(mem):
    lut = MailboxLUT()
    entry = lut.init_entry(1, EpochType.EPOCH_BYTES)
    entry.closed = True
    reopened = lut.init_entry(1, EpochType.EPOCH_OPS, BufferMode.MANAGED)
    assert reopened is entry
    assert not reopened.closed
    assert reopened.threshold_type is EpochType.EPOCH_OPS
    assert reopened.mode is BufferMode.MANAGED


def test_capacity_bounded(mem):
    lut = MailboxLUT(max_entries=2)
    lut.init_entry(1, EpochType.EPOCH_BYTES)
    lut.init_entry(2, EpochType.EPOCH_BYTES)
    with pytest.raises(LutError):
        lut.init_entry(3, EpochType.EPOCH_BYTES)


def test_mailbox_addresses_masked_to_64_bits(mem):
    lut = MailboxLUT()
    entry = lut.init_entry(2 ** 70 + 5, EpochType.EPOCH_BYTES)
    assert lut.lookup(5) is entry  # 2**70 wraps away


def test_post_activates_head_buffer_only(mem):
    lut = MailboxLUT()
    entry = lut.init_entry(1, EpochType.EPOCH_BYTES)
    b1, b2 = _posted(mem), _posted(mem)
    lut.post(entry, b1)
    lut.post(entry, b2)
    assert entry.active is b1
    assert b1.epoch == 0 and b2.epoch == -1  # b2 not yet activated
    assert lut.counters_in_use == 1


def test_retire_advances_epoch_and_activates_next(mem):
    lut = MailboxLUT()
    entry = lut.init_entry(1, EpochType.EPOCH_BYTES)
    b1, b2 = _posted(mem), _posted(mem)
    lut.post(entry, b1)
    lut.post(entry, b2)
    b1.bytes_received = 64
    record = lut.retire_active(entry)
    assert record.head_addr == b1.buffer.addr
    assert record.length == 64
    assert record.epoch == 0
    assert entry.epoch == 1
    assert entry.active is b2 and b2.epoch == 1
    assert b1.completed


def test_counter_pool_spills_when_exhausted(mem):
    lut = MailboxLUT(max_counters=1)
    e1 = lut.init_entry(1, EpochType.EPOCH_BYTES)
    e2 = lut.init_entry(2, EpochType.EPOCH_BYTES)
    lut.post(e1, _posted(mem))
    lut.post(e2, _posted(mem))
    assert not e1.counter_spilled
    assert e2.counter_spilled
    assert lut.spill_events == 1
    # Retiring e1's buffer frees a counter for the next activation.
    e1.queue[0].bytes_received = 64
    lut.retire_active(e1)
    lut.post(e1, _posted(mem))
    assert not e1.counter_spilled  # got the freed counter


def test_retired_history_bounded(mem):
    lut = MailboxLUT(retain_epochs=2)
    entry = lut.init_entry(1, EpochType.EPOCH_BYTES)
    for _ in range(5):
        lut.post(entry, _posted(mem))
        lut.retire_active(entry)
    assert len(entry.retired) == 2
    assert [r.epoch for r in entry.retired] == [3, 4]


def test_rewind_fetches_past_epochs(mem):
    lut = MailboxLUT(retain_epochs=4)
    entry = lut.init_entry(1, EpochType.EPOCH_BYTES)
    buffers = []
    for _ in range(3):
        b = _posted(mem)
        buffers.append(b)
        lut.post(entry, b)
        lut.retire_active(entry)
    assert lut.rewind(entry, 1).buffer is buffers[2]
    assert lut.rewind(entry, 3).buffer is buffers[0]
    assert lut.rewind(entry, 4) is None
    assert lut.rewind(entry, 0) is None


def test_remove_releases_counter(mem):
    lut = MailboxLUT()
    entry = lut.init_entry(1, EpochType.EPOCH_BYTES)
    lut.post(entry, _posted(mem))
    assert lut.counters_in_use == 1
    lut.remove(1)
    assert lut.counters_in_use == 0
    assert lut.lookup(1) is None


def test_memory_footprint_model(mem):
    lut = MailboxLUT()
    e = lut.init_entry(1, EpochType.EPOCH_BYTES)
    assert lut.memory_bytes() == 24
    lut.post(e, _posted(mem))
    assert lut.memory_bytes() == 24 + 8


def test_catch_all_assignment(mem):
    lut = MailboxLUT()
    e = lut.init_entry(0xFFFF, EpochType.EPOCH_OPS)
    lut.set_catch_all(e)
    assert lut.catch_all is e
    lut.set_catch_all(None)
    assert lut.catch_all is None


def test_invalid_sizing_rejected():
    with pytest.raises(ValueError):
        MailboxLUT(max_entries=0)
    with pytest.raises(ValueError):
        MailboxLUT(max_counters=-1)
