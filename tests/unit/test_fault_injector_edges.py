"""Unit: fault-injector edge cases the scenario fuzzer exercises.

The fuzzer samples ChaosSchedules freely, so it routinely produces
compositions the curated chaos suites never did: two flap windows on
the same link that overlap in time, restart commands against a node
that already restarted, and crash-stops landing mid-checkpoint-cadence.
Each must stay well-defined — one drop per delivery, idempotent
restores, checkpoints skipped (not corrupted) while the NIC is dark.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.faults import ChaosEvent, ChaosSchedule, FaultInjector
from repro.network.message import Delivery, DeliveryInfo, Message
from repro.recovery import CheckpointDaemon

from tests.helpers import run_gens

MAILBOX = 0xAB


def _delivery(src: int, dst: int, data: bytes = b"\x42" * 8) -> Delivery:
    msg = Message(src=src, dst=dst, size=len(data), data=data)
    return Delivery(msg, DeliveryInfo(send_time=0.0, arrival_time=0.0, hops=1))


# ----------------------------------------------- overlapping flap windows


def test_overlapping_link_flap_windows_drop_once_per_delivery():
    """Two ChaosSchedule flaps on the same link with overlapping spans:
    a delivery inside the overlap matches both windows but is dropped
    (and attributed) exactly once, and traffic flows again as soon as
    the later window closes."""
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    topo = cl.topology
    # Nodes 0 and 2 sit on different switches; the first hop of their
    # static route is the link both flaps will take down.  Nodes 0 and 1
    # share a switch, so their traffic never crosses any link.
    assert topo.node_switch(0) == topo.node_switch(1)
    assert topo.node_switch(0) != topo.node_switch(2)
    path = topo.static_path(topo.node_switch(0), topo.node_switch(2))
    u, v = path[0], path[1]

    schedule = ChaosSchedule(
        events=[
            ChaosEvent(kind="link_flap", start=1_000.0, end=5_000.0, params=(u, v)),
            ChaosEvent(kind="link_flap", start=3_000.0, end=8_000.0, params=(u, v)),
        ]
    )
    inj = schedule.apply(FaultInjector(cl))
    flaps = [w for w in inj.log.windows if w[0] == "link_flap"]
    assert [(w[1], w[2]) for w in flaps] == [(1_000.0, 5_000.0), (3_000.0, 8_000.0)]

    fault_filter = cl.fabric.fault_filter
    cl.sim.now = 4_000.0  # inside both windows
    assert fault_filter(_delivery(0, 2)) is True
    assert inj.log.messages_dropped == 1  # one drop, despite two matches
    assert inj.log.window_drops == {"link_flap": 1}
    assert fault_filter(_delivery(0, 1)) is False  # same-switch: no link crossed
    cl.sim.now = 6_000.0  # first window closed, second still open
    assert fault_filter(_delivery(0, 2)) is True
    cl.sim.now = 9_000.0  # both closed: the link is healthy again
    assert fault_filter(_delivery(0, 2)) is False
    assert inj.log.messages_dropped == 2
    assert cl.sim.stats.counter("faults.drops_link_flap").value == 2


# ----------------------------------------------- restore after restore


def test_restart_after_restart_is_idempotent():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    nic0 = cl.node(0).nic
    inj.fail_node(0, at=1_000.0)
    inj.restart_node(0, at=2_000.0)
    inj.restart_node(0, at=3_000.0)  # redundant: the node is already back

    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    payload = bytes(range(64))
    got = {}

    def rx():
        yield 4_000.0
        win = yield from api1.init_window(MAILBOX, epoch_threshold=len(payload))
        yield from api1.post_buffer(win, size=len(payload))
        info = yield from api1.wait_completion(win)
        got["data"] = info.read_data()

    def tx():
        yield 5_000.0  # past both restarts
        op = yield from api0.put(1, MAILBOX, data=payload)
        yield op.local_done

    run_gens(cl.sim, rx(), tx())

    assert not nic0.failed
    assert not inj.node_is_dead(0)
    assert nic0.incarnation == 1  # one crash, however many restores
    # The injector faithfully logs both commands, but the NIC treats
    # the second as a no-op rather than double-counting a restart.
    assert [t for (_n, t) in inj.log.restarts] == [2_000.0, 3_000.0]
    assert nic0.stat("restarts").value == 1
    assert got["data"] == payload  # the restored node sends normally


# ----------------------------------------------- crash during checkpoint cadence


def test_fail_node_during_checkpoint_cadence_skips_dark_ticks():
    """Crash-stop a node mid-checkpoint-cadence: ticks landing while the
    NIC is dark take nothing (the last good snapshot survives in host
    memory), and the cadence resumes untouched after the restart."""
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    nic1 = cl.node(1).nic
    daemon = CheckpointDaemon(cl.node(1), interval_ns=1_000.0, horizon_ns=10_000.0)
    daemon.start()
    inj = FaultInjector(cl)
    inj.fail_node(1, at=2_500.0)  # between the 2000 and 3000 ticks
    inj.restart_node(1, at=6_500.0)

    probed = {}

    def probe() -> None:  # mid-outage: the daemon must refuse, not corrupt
        probed["failed"] = nic1.failed
        probed["take"] = daemon.take()
        probed["latest_time"] = daemon.latest.time if daemon.latest else None

    cl.sim.schedule_at(5_000.0, probe)
    cl.sim.run()

    assert probed["failed"] is True
    assert probed["take"] is None  # a dead NIC has nothing to read
    assert probed["latest_time"] == 2_000.0  # pre-crash snapshot survives
    # Ticks at 1000/2000 took; 3000-6000 fell in the outage; 7000-10000
    # resumed after the restart: 6 checkpoints, zero while dark.
    assert daemon.taken == 6
    assert daemon.latest is not None and daemon.latest.time == 10_000.0
    assert not nic1.failed


# ----------------------------------------------- fabric route-state mirroring


def _multi_path_pair(fabric, sim_nodes: int):
    """A (src, dst, victim_switch) where the pair has several candidate
    paths and *victim_switch* lies on some-but-not-all of them (and on
    neither endpoint's attachment switch)."""
    for src in range(sim_nodes):
        for dst in range(sim_nodes):
            if src == dst:
                continue
            _static, cands, _allowed = fabric._pair_paths(src, dst)
            if len(cands) < 2:
                continue
            ends = {cands[0][0], cands[0][-1]}
            for path in cands:
                for sw in path[1:-1]:
                    if sw in ends:
                        continue
                    if any(sw not in other for other in cands):
                        return src, dst, sw
    raise AssertionError("no multi-path pair with a partial victim switch")


def test_switch_failure_invalidates_stale_scorer_caches():
    """Regression: the packet fabric's ``_scored_paths`` / fast-route
    caches bake channel handles in at build time, and before route-state
    mirroring nothing invalidated them across ``fail_switch`` — adaptive
    selection kept scoring (and picking) paths through the dead switch.
    Failing a switch must invalidate the caches, exclude its paths while
    the window is open, and re-admit them once it closes."""
    from repro.network.routing import RoutingMode

    cl = Cluster.build(
        n_nodes=16, topology="dragonfly", nic_type="rvma", fidelity="packet", seed=7
    )
    fabric = cl.fabric
    src, dst, victim = _multi_path_pair(fabric, 16)

    # Warm every cache layer the way live traffic would.
    fabric.select_path(src, dst, RoutingMode.ADAPTIVE)
    assert (src, dst) in fabric._scored_paths

    inj = FaultInjector(cl)
    inj.fail_switch(victim, start=0.0, end=5_000.0)

    # The mark applies immediately (start <= now) and nukes the caches.
    assert (src, dst) not in fabric._scored_paths
    assert not fabric._fast_routes
    assert victim in fabric._down_switches

    _static, cands, allowed = fabric._pair_paths(src, dst)
    assert 0 < len(allowed) < len(cands)
    assert all(victim not in cands[i] for i in allowed)
    for _ in range(20):
        choice = fabric.select_path(src, dst, RoutingMode.ADAPTIVE)
        assert victim not in choice.path

    cl.sim.run()  # past the window end: the up-mark restores the switch
    assert cl.sim.now >= 5_000.0
    assert victim not in fabric._down_switches
    _static, cands, allowed = fabric._pair_paths(src, dst)
    assert allowed == tuple(range(len(cands)))


def test_overlapping_chaos_flaps_keep_link_down_until_both_close():
    """Two overlapping ChaosSchedule flaps on one link: the fabric's
    down-state is a *counter*, so the link stays routed-around through
    the union of the windows and only comes back when the later one
    closes."""
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    topo = cl.topology
    path = topo.static_path(topo.node_switch(0), topo.node_switch(2))
    u, v = path[0], path[1]
    edge = frozenset((u, v))

    schedule = ChaosSchedule(
        events=[
            ChaosEvent(kind="link_flap", start=1_000.0, end=5_000.0, params=(u, v)),
            ChaosEvent(kind="link_flap", start=3_000.0, end=8_000.0, params=(u, v)),
        ]
    )
    schedule.apply(FaultInjector(cl))

    fabric = cl.fabric
    seen: list[int] = []
    for t in (500.0, 2_000.0, 4_000.0, 6_000.0, 9_000.0):
        cl.sim.schedule_at(t, lambda: seen.append(fabric._down_links.get(edge, 0)))
    cl.sim.run()
    assert seen == [0, 1, 2, 1, 0]
    assert edge not in fabric._down_links


def test_clear_restores_route_state_and_cancels_pending_marks():
    """clear() must undo an outstanding down-mark (open-ended
    fail_switch) and cancel not-yet-fired transitions so a cleared
    injector leaves no residue in the fabric's routing state."""
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    fabric = cl.fabric
    topo = cl.topology
    path = topo.static_path(topo.node_switch(0), topo.node_switch(2))
    u, v = path[0], path[1]
    edge = frozenset((u, v))

    inj = FaultInjector(cl)
    inj.fail_switch(u, start=0.0)  # end=inf: nothing would ever restore it
    assert u in fabric._down_switches
    inj.clear()
    assert u not in fabric._down_switches

    inj2 = FaultInjector(cl)
    inj2.flap_link(u, v, [(1_000.0, 2_000.0)])
    inj2.clear()  # before the window opens: both transitions cancelled
    seen: list[int] = []
    cl.sim.schedule_at(1_500.0, lambda: seen.append(fabric._down_links.get(edge, 0)))
    cl.sim.run()
    assert seen == [0]
    assert edge not in fabric._down_links
