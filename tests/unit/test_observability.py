"""Unit tests for the observability layer: canonical-name federation,
the span tracer, MetricsRegistry collection, and RunReport merge/render.
"""

import json

from repro.observability import (
    CATALOG,
    MetricsRegistry,
    RunReport,
    SpanTracer,
    canonical_name,
    lookup,
)
from repro.sim import Simulator


# --- canonical_name mapping ---------------------------------------------


def test_canonical_passthrough_for_catalog_names():
    assert canonical_name("fabric.messages_sent") == "fabric.messages_sent"
    assert canonical_name("transport.tx_attempts", "summary") == "transport.tx_attempts"


def test_canonical_component_family_rules():
    assert canonical_name("rvma0.bytes_placed") == "nic.rvma.bytes_placed"
    assert canonical_name("rvma17.bytes_placed") == "nic.rvma.bytes_placed"
    assert canonical_name("rdma3.mrs_registered") == "nic.rdma.mrs_registered"
    assert canonical_name("nic2.tx_messages") == "nic.base.tx_messages"
    assert canonical_name("switch5.packets_forwarded") == "fabric.packets_forwarded"


def test_canonical_rel_prefix_maps_to_transport():
    assert canonical_name("ep0.rel_tx") == "transport.tx"
    assert canonical_name("rvma1.rel_retransmits") == "transport.retransmits"
    # replays are recovery-owned, not transport-owned
    assert canonical_name("rvma1.rel_replays") == "recovery.replayed_msgs"


def test_canonical_skips_flat_reliability_counter_duplicates():
    # transport/detector/auditor double-register flat cluster-wide
    # counters next to their per-NIC ones; counting both would double
    # every value.
    assert canonical_name("reliability.rel_tx") is None
    assert canonical_name("recovery.audit_violations") is None
    # ...but the skip applies to counters only: canonical summaries
    # registered directly under those prefixes pass through.
    assert (
        canonical_name("recovery.checkpoint_age_ns", "summary")
        == "recovery.checkpoint_age_ns"
    )


def test_canonical_faults_not_remapped_by_suffix_rules():
    # faults.crashes must stay under faults, not hit the recovery
    # suffix rule for "crashes".
    assert canonical_name("faults.crashes") == "faults.crashes"
    assert canonical_name("faults.drops_random") == "faults.drops_random"


def test_canonical_detector_and_recovery_suffixes():
    assert canonical_name("rvma0.peers_suspected") == "detector.peers_suspected"
    assert canonical_name("rvma0.rejoins_initiated") == "recovery.rejoins_initiated"


def test_canonical_unknown_component_lands_under_host():
    assert canonical_name("mystery7.widgets") == "host.mystery7.widgets"
    assert canonical_name("bare") == "host.bare"


def test_lookup_honors_patterns():
    assert lookup("faults.drops_random") is not None
    assert lookup("faults.drops_link_flap") is not None  # via faults.drops_*
    assert lookup("no.such.metric") is None
    for name, spec in CATALOG.items():
        assert spec.unit and spec.description, name


# --- SpanTracer ----------------------------------------------------------


def _tracer(t=[0.0]):
    return SpanTracer(clock=lambda: t[0], wall_clock=lambda: 0.0), t


def test_spans_off_by_default():
    spans, _ = _tracer()
    assert not spans.active
    assert spans.begin("nic", "x") is None
    spans.end(None)  # must be a no-op, not a crash
    assert len(spans) == 0


def test_span_category_filtering():
    spans, t = _tracer([0.0])
    spans.enable("transport")
    assert spans.wants("transport") and not spans.wants("nic")
    assert spans.begin("nic", "x") is None
    sp = spans.begin("transport", "send", seq=1)
    t[0] = 10.0
    spans.end(sp, outcome="acked")
    assert len(spans) == 1
    assert sp.sim_time == 10.0
    assert sp.fields == {"seq": 1, "outcome": "acked"}
    assert spans.categories() == ["transport"]


def test_span_enable_all_and_context_parenting():
    spans, t = _tracer([0.0])
    spans.enable()
    with spans.span("run", "outer") as outer:
        t[0] = 5.0
        with spans.span("api", "inner") as inner:
            t[0] = 7.0
    assert inner.parent_id == outer.id
    assert outer.sim_time == 7.0 and inner.sim_time == 2.0
    assert spans.spans("api") == [inner]


def test_span_double_end_is_idempotent():
    spans, t = _tracer([0.0])
    spans.enable()
    sp = spans.begin("nic", "fill")
    t[0] = 3.0
    spans.end(sp)
    t[0] = 9.0
    spans.end(sp)  # already closed: must not move the end time
    assert sp.end == 3.0


def test_span_top_n_and_summary():
    spans, t = _tracer([0.0])
    spans.enable()
    durations = [5.0, 1.0, 9.0]
    for i, d in enumerate(durations):
        t[0] = 0.0
        sp = spans.begin("cat", f"s{i}")
        t[0] = d
        spans.end(sp)
    open_sp = spans.begin("cat", "open")  # never closed
    top = spans.top_by_sim_time(2)
    assert [s.name for s in top] == ["s2", "s0"]
    roll = spans.summary()["cat"]
    assert roll["count"] == 4 and roll["open"] == 1
    assert roll["sim_ns"] == sum(durations)
    assert open_sp.open


def test_span_mirrors_into_flat_tracer():
    from repro.sim.trace import Tracer

    flat = Tracer(enabled=True)
    spans = SpanTracer(clock=lambda: 0.0, tracer=flat, wall_clock=lambda: 0.0)
    spans.enable()
    spans.end(spans.begin("transport", "send"))
    cats = [e.category for e in flat.entries]
    assert cats == ["span.transport", "span.transport"]


def test_span_chrome_trace_shapes():
    spans, t = _tracer([0.0])
    spans.enable()
    sp = spans.begin("cat", "closed")
    t[0] = 2.0
    spans.end(sp)
    spans.begin("cat", "open")
    events = spans.to_chrome_trace()
    assert [e["ph"] for e in events] == ["X", "i"]
    assert events[0]["dur"] == 2.0 / 1000.0


# --- MetricsRegistry.collect --------------------------------------------


def test_collect_federates_and_dedups():
    sim = Simulator()
    # two RVMA NICs' worth of flat counters
    sim.stats.counter("rvma0.bytes_placed").add(100)
    sim.stats.counter("rvma1.bytes_placed").add(50)
    # per-NIC transport counters + their flat cluster-wide duplicates
    sim.stats.counter("rvma0.rel_tx").add(7)
    sim.stats.counter("reliability.rel_tx").add(7)
    # canonical summary registered directly
    sim.stats.summary("fabric.msg_latency_ns").add(10.0)
    sim.stats.summary("fabric.msg_latency_ns").add(30.0)

    class FakeFabric:
        def observable_metrics(self):
            return {"fabric.messages_sent": 3}

    sim.register_component(FakeFabric())
    reg = MetricsRegistry.collect(sim)
    assert reg.counters["nic.rvma.bytes_placed"] == 150
    assert reg.counters["transport.tx"] == 7  # not 14: flat dup skipped
    assert reg.counters["fabric.messages_sent"] == 3
    assert reg.summaries["fabric.msg_latency_ns"].n == 2
    assert reg.groups() == ["fabric", "nic", "transport"]
    assert "nic.rvma.bytes_placed" in reg.flat("nic")
    assert "fabric.messages_sent" not in reg.flat("nic")
    assert reg.snapshot()["transport"]["transport.tx"] == 7
    assert reg.undocumented() == []


def test_collect_merges_histograms_across_components():
    sim = Simulator()
    sim.stats.histogram("rvma0.epoch_bytes", 0.0, 100.0, 10).add(5.0)
    sim.stats.histogram("rvma1.epoch_bytes", 0.0, 100.0, 10).add(15.0)
    reg = MetricsRegistry.collect(sim)
    h = reg.histograms["nic.rvma.epoch_bytes"]
    assert h.count == 2 and h.bins[0] == 1 and h.bins[1] == 1


def test_collect_accepts_cluster_like_target():
    sim = Simulator()
    sim.stats.counter("rvma0.tx_messages").add(2)

    class ClusterLike:
        pass

    target = ClusterLike()
    target.sim = sim
    reg = MetricsRegistry.collect(target)
    assert reg.counters["nic.rvma.tx_messages"] == 2


# --- RunReport -----------------------------------------------------------


def _report_from(sim, meta=None):
    return RunReport.collect(sim, meta=meta)


def test_run_report_round_trip(tmp_path):
    sim = Simulator()
    sim.stats.counter("rvma0.bytes_placed").add(64)
    sim.spans.enable()
    sp = sim.spans.begin("run", "unit")
    sim.schedule(10.0, sim.spans.end, sp)
    sim.run()
    rep = _report_from(sim, meta={"seed": 1})
    path = tmp_path / "report.json"
    rep.save(str(path))
    data = json.loads(path.read_text())
    assert data["meta"]["seed"] == 1
    assert data["metrics"]["nic"]["nic.rvma.bytes_placed"] == 64
    assert "run" in data["spans"]["categories"]
    assert data["spans"]["hottest_by_sim_time"][0]["name"] == "unit"
    md = rep.to_markdown()
    assert "nic.rvma.bytes_placed" in md and "| run |" in md.replace("`run`", "| run |")


def test_run_report_merge_combines_counters_and_summaries():
    reports = []
    for placed, lat in ((100, 10.0), (50, 30.0)):
        sim = Simulator()
        sim.stats.counter("rvma0.bytes_placed").add(placed)
        sim.stats.summary("fabric.msg_latency_ns").add(lat)
        reports.append(_report_from(sim))
    merged = RunReport.merge(reports, meta={"harness": "test"})
    nic = merged.metrics["nic"]["nic.rvma.bytes_placed"]
    assert nic == 150
    lat = merged.metrics["fabric"]["fabric.msg_latency_ns"]
    assert lat["n"] == 2 and lat["mean"] == 20.0
    assert lat["min"] == 10.0 and lat["max"] == 30.0
    assert merged.meta["merged_runs"] == 2
    assert merged.undocumented() == []


def test_run_report_merge_single_passthrough():
    sim = Simulator()
    sim.stats.counter("rvma0.bytes_placed").add(5)
    merged = RunReport.merge([_report_from(sim)])
    assert merged.metrics["nic"]["nic.rvma.bytes_placed"] == 5
