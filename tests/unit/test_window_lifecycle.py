"""Unit tests: window lifecycle edge semantics (close/reopen, re-posting)."""

import pytest

from repro.core import EpochType, RvmaApi, RvmaStatus

from tests.helpers import run_gen, run_gens


def test_closed_window_reopens_with_new_parameters(rvma_pair):
    cl = rvma_pair
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def receiver():
        win = yield from api1.init_window(0x300, epoch_threshold=16)
        yield from api1.post_buffer(win, size=16)
        yield from api1.close_win(win)
        # Re-open the same mailbox with different semantics.
        win2 = yield from api1.init_window(
            0x300, epoch_threshold=1, epoch_type=EpochType.EPOCH_OPS
        )
        yield from api1.post_buffer(win2, size=64)
        info = yield from api1.wait_completion(win2)
        return info.length

    def sender():
        yield 30_000.0  # after the reopen
        op = yield from api0.put(1, 0x300, data=b"z" * 40)
        yield op.local_done

    length, _ = run_gens(cl.sim, receiver(), sender())
    assert length == 40  # OPS threshold completed on the single put


def test_double_init_of_open_window_fails(rvma_pair):
    from repro.core import RvmaApiError

    api1 = RvmaApi(rvma_pair.node(1))

    def proc():
        yield from api1.init_window(0x301, epoch_threshold=8)
        yield from api1.init_window(0x301, epoch_threshold=8)

    with pytest.raises(RvmaApiError):
        run_gen(rvma_pair.sim, proc())


def test_reposting_same_buffer_cycles_epochs(rvma_pair):
    cl = rvma_pair
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def receiver():
        win = yield from api1.init_window(0x302, epoch_threshold=8)
        rec = yield from api1.post_buffer(win, size=8)
        contents = []
        for _ in range(3):
            info = yield from api1.wait_completion(win)
            contents.append(info.read_data())
            yield from api1.post_buffer(win, buffer=rec.buffer)
        return contents

    def sender():
        yield 2_000.0
        for byte in (b"1", b"2", b"3"):
            op = yield from api0.put(1, 0x302, data=byte * 8)
            yield op.local_done
            yield 4_000.0

    contents, _ = run_gens(cl.sim, receiver(), sender())
    assert contents == [b"1" * 8, b"2" * 8, b"3" * 8]
    # Same physical buffer all along: rewind history shares the address.
    entry = cl.node(1).nic.lut.lookup(0x302)
    addrs = {r.head_addr for r in entry.retired}
    assert len(addrs) == 1


def test_close_status_for_unknown_window(rvma_pair):
    api1 = RvmaApi(rvma_pair.node(1))

    def proc():
        win = yield from api1.init_window(0x303, epoch_threshold=8)
        win.virtual_addr = 0xFFFF_FFFF  # sabotage: close something unknown
        status = yield from api1.close_win(win)
        return status

    assert run_gen(rvma_pair.sim, proc()) is RvmaStatus.ERR_NO_WINDOW
