"""Unit tests for the KV service building blocks (no simulator).

Wire framing, shard placement, client addressing, the Zipf sampler and
the histogram quantile estimator the service reports through.
"""

import pytest

from repro.core.addressing import stable_hash64
from repro.services import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SCAN,
    KvReply,
    KvRequest,
    ReplyDecoder,
    RequestDecoder,
    ShardMap,
    WireError,
    ZipfSampler,
    client_id_of,
    node_of_client,
)
from repro.services.wire import (
    STATUS_NOT_FOUND,
    STATUS_OK,
    decode_scan_payload,
    encode_reply,
    encode_request,
    encode_scan_payload,
)
from repro.sim.stats import Histogram


# ------------------------------------------------------------------ wire format


def test_request_roundtrip():
    frame = encode_request(OP_PUT, client_id=0x0302, req_id=7, key=b"k1", value=b"hello")
    (req,) = RequestDecoder().feed(frame)
    assert req == KvRequest(OP_PUT, 0x0302, 7, b"k1", b"hello")
    assert req.encode() == frame


def test_reply_roundtrip():
    frame = encode_reply(STATUS_OK, req_id=9, payload=b"world")
    (rep,) = ReplyDecoder().feed(frame)
    assert rep == KvReply(STATUS_OK, 9, b"world")
    assert rep.encode() == frame


def test_request_decoder_reassembles_across_arbitrary_chunk_boundaries():
    frames = [
        encode_request(OP_PUT, 1, 1, b"alpha", b"A" * 37),
        encode_request(OP_GET, 1, 2, b"beta"),
        encode_request(OP_DELETE, 2, 3, b"gamma"),
        encode_request(OP_SCAN, 2, 4, b"ga"),
    ]
    stream = b"".join(frames)
    # Feed one byte at a time: worst-case chunking a receiver-managed
    # stream could produce.
    dec = RequestDecoder()
    got = []
    for i in range(len(stream)):
        got.extend(dec.feed(stream[i : i + 1]))
    assert [r.encode() for r in got] == frames
    assert dec.pending_bytes == 0
    assert dec.bytes_fed == len(stream)


def test_reply_decoder_handles_batched_puts():
    frames = [encode_reply(STATUS_OK, i, bytes([i]) * i) for i in range(1, 6)]
    blob = b"".join(frames)
    dec = ReplyDecoder()
    # Split mid-header of the third frame.
    cut = len(frames[0]) + len(frames[1]) + 2
    first = dec.feed(blob[:cut])
    rest = dec.feed(blob[cut:])
    assert [r.req_id for r in first + rest] == [1, 2, 3, 4, 5]
    assert dec.pending_bytes == 0


def test_wire_rejects_bad_frames():
    with pytest.raises(WireError):
        encode_request(99, 0, 0, b"k")
    with pytest.raises(WireError):
        encode_request(OP_PUT, 0, 0, b"k" * 0x10001)
    dec = RequestDecoder()
    with pytest.raises(WireError):
        dec.feed(bytes([99]) + b"\x00" * 16)  # complete header, bogus op


def test_scan_payload_roundtrip():
    items = [(b"k1", b"v1"), (b"k22", b""), (b"", b"v333")]
    assert decode_scan_payload(encode_scan_payload(items)) == items
    with pytest.raises(WireError):
        decode_scan_payload(encode_scan_payload(items)[:-1])


# -------------------------------------------------------------- shard placement


def test_stable_hash64_is_deterministic_and_wide():
    assert stable_hash64(b"key") == stable_hash64("key")
    assert stable_hash64(b"key") != stable_hash64(b"key2")
    assert 0 <= stable_hash64(b"key") < 2**64


def test_shard_map_covers_all_nodes_round_robin():
    m = ShardMap([0, 1, 2], shards_per_node=2)
    assert m.n_shards == 6
    assert [m.node_of(s) for s in range(6)] == [0, 1, 2, 0, 1, 2]
    assert m.shards_on(1) == [1, 4]
    # Every shard gets a distinct mailbox.
    assert len({m.mailbox_of(s) for s in range(6)}) == 6


def test_shard_map_routes_deterministically_and_spreads_keys():
    m = ShardMap([0, 1, 2, 3], shards_per_node=2)
    keys = [b"k%04d" % i for i in range(512)]
    first = [m.shard_of(k) for k in keys]
    assert first == [m.shard_of(k) for k in keys]
    hit = {m.locate(k)[1] for k in keys}  # locate -> (shard, node, mailbox)
    assert hit == {0, 1, 2, 3}
    counts = [first.count(s) for s in range(m.n_shards)]
    # blake2b spreads 512 keys over 8 shards without gross imbalance.
    assert min(counts) > 0 and max(counts) < 512 // 2


def test_client_id_roundtrip():
    cid = client_id_of(node_id=5, index=7)
    assert node_of_client(cid) == 5
    assert cid & 0xFF == 7
    with pytest.raises(ValueError):
        client_id_of(0, 256)


# -------------------------------------------------------------------- zipf/load


def test_zipf_uniform_when_s_zero():
    z = ZipfSampler(10, 0.0)
    ranks = [z.sample(u / 100.0) for u in range(100)]
    assert min(ranks) == 0 and max(ranks) == 9
    # Each decile maps to its own rank under s=0.
    assert ranks.count(0) == pytest.approx(10, abs=1)


def test_zipf_skews_toward_low_ranks():
    z = ZipfSampler(100, 1.2)
    ranks = [z.sample(u / 1000.0) for u in range(1000)]
    assert ranks.count(0) > 200  # head rank dominates
    assert all(0 <= r < 100 for r in ranks)


# ------------------------------------------------------------------- percentile


def test_histogram_percentile_interpolates():
    h = Histogram("t", lo=0.0, hi=100.0, nbins=10)
    for x in range(100):
        h.add(float(x))
    assert h.percentile(0.5) == pytest.approx(50.0, abs=h.width)
    assert h.percentile(0.99) == pytest.approx(99.0, abs=h.width)
    assert h.percentile(0.0) <= h.percentile(1.0)


def test_histogram_percentile_edges():
    h = Histogram("t", lo=0.0, hi=10.0, nbins=10)
    assert h.percentile(0.5) == 0.0  # empty
    h.add(-5.0)   # underflow
    h.add(500.0)  # overflow
    assert h.percentile(0.25) == h.lo
    assert h.percentile(1.0) == h.hi
    with pytest.raises(ValueError):
        h.percentile(1.5)
