"""Unit tests for the terminal chart renderer."""

import pytest

from repro.experiments.charts import BAR_WIDTH, bar_chart, chart_for_result
from repro.experiments.report import ExperimentResult


def test_bar_lengths_proportional():
    out = bar_chart(["a", "b"], [1.0, 2.0])
    line_a, line_b = out.splitlines()
    assert line_b.count("█") == pytest.approx(2 * line_a.count("█"), abs=1)
    assert line_b.count("█") == BAR_WIDTH


def test_reference_marker_and_legend():
    out = bar_chart(["x"], [1.0], reference=2.0, reference_label="paper")
    assert "┊" in out
    assert "paper 2.00" in out


def test_title_and_units():
    out = bar_chart(["only"], [3.5], title="T", unit="x")
    assert out.startswith("T\n")
    assert "3.50x" in out


def test_mismatched_inputs_rejected():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_empty_chart_is_safe():
    assert bar_chart([], [], title="empty") == "empty"


def test_zero_values_render():
    out = bar_chart(["z"], [0.0])
    assert "0.00" in out


def _result(name, rows, claims=None):
    return ExperimentResult(
        name=name, title="t", headers=["a", "b", "c", "d", "e", "f"],
        rows=rows, paper_claims=claims or {},
    )


def test_chart_for_latency_figures():
    r = _result("fig4", [[2, 800, 2100, 63.0, 2.7]], {"max_reduction_pct": 65.8})
    out = chart_for_result(r)
    assert "2B" in out and "63.00%" in out and "65.80%" in out


def test_chart_for_motif_figures():
    r = _result("fig7", [["dragonfly", "adaptive", "2Tbps", 1, 4, 4.1]],
                {"avg_speedup": 3.56})
    out = chart_for_result(r)
    assert "dragonfly/adaptive/2Tbps" in out and "4.10x" in out


def test_chart_for_fig6_and_generic():
    r6 = _result("fig6", [[16, 9000, 1000, 305, 2500, 117]])
    assert "305" in chart_for_result(r6)
    generic = _result("ablation-lut", [["gen4", 1000, 1400, 400, 40.0]])
    assert "gen4" in chart_for_result(generic)
