"""Unit tests for the motif framework plumbing and bandwidth helpers."""

import pytest

from repro.cluster import Cluster
from repro.motifs import RvmaProtocol, Sweep3D
from repro.motifs.base import MotifResult, SimBarrier
from repro.motifs.halo3d import _near_cubic_grid
from repro.motifs.sweep3d import OCTANT_DIRS
from repro.motifs.transfer import mailbox_for
from repro.sim import Simulator, spawn
from repro.timing import VERBS_OPA_SKYLAKE
from repro.timing.bandwidth import BandwidthPoint, rvma_bandwidth


def test_sim_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    barrier = SimBarrier(sim, parties=3)
    released = []

    def proc(delay):
        yield delay
        yield barrier.wait()
        released.append((sim.now, delay))

    for d in (10.0, 50.0, 30.0):
        spawn(sim, proc(d))
    sim.run()
    assert all(t == 50.0 for t, _ in released)
    assert barrier.generation == 1


def test_sim_barrier_reusable_across_generations():
    sim = Simulator()
    barrier = SimBarrier(sim, parties=2)
    gens = []

    def proc():
        g1 = yield barrier.wait()
        g2 = yield barrier.wait()
        gens.append((g1, g2))

    spawn(sim, proc())
    spawn(sim, proc())
    sim.run()
    assert gens == [(1, 2), (1, 2)]


def test_motif_result_total_property():
    r = MotifResult("m", "rvma", 4, elapsed=100.0, setup_elapsed=20.0,
                    messages=8, bytes_moved=1024)
    assert r.total == 120.0


def test_sweep_octants_cover_all_quadrants_twice():
    assert len(OCTANT_DIRS) == 8
    from collections import Counter

    assert all(c == 2 for c in Counter(OCTANT_DIRS).values())


def test_sweep_grid_factorisation_default():
    cl = Cluster.build(n_nodes=12, topology="dragonfly", nic_type="rvma", fidelity="flow")
    m = Sweep3D(cl, RvmaProtocol(), kb=1)
    assert m.px * m.py == 12
    assert abs(m.px - m.py) <= 2  # near-square split


def test_near_cubic_grid():
    assert sorted(_near_cubic_grid(8)) == [2, 2, 2]
    assert sorted(_near_cubic_grid(16)) == [2, 2, 4]
    assert sorted(_near_cubic_grid(64)) == [4, 4, 4]
    gx, gy, gz = _near_cubic_grid(7)  # prime: degenerate but valid
    assert gx * gy * gz == 7


def test_mailbox_for_unique_per_src_tag():
    boxes = {mailbox_for(s, t) for s in range(100) for t in range(10)}
    assert len(boxes) == 1000


def test_bandwidth_point_maths():
    p = BandwidthPoint(size=1000, n_messages=10, elapsed_ns=2000.0)
    assert p.bytes_per_ns == 5.0
    assert p.msgs_per_us == 5.0
    assert p.link_utilisation(10.0) == 0.5


def test_rvma_bandwidth_measures_positive_rate():
    p = rvma_bandwidth(VERBS_OPA_SKYLAKE, 256, n_messages=8, window=4)
    assert p.elapsed_ns > 0
    assert 0 < p.link_utilisation(VERBS_OPA_SKYLAKE.net.link_bw) <= 1.0
