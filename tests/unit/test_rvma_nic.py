"""Unit tests for the RVMA NIC hardware model."""

import pytest

from repro.cluster import Cluster
from repro.memory.buffer import HostBuffer
from repro.nic.headers import NackReason
from repro.nic.lut import BufferMode, EpochType, RetiredBuffer
from repro.nic.rvma import RvmaNicConfig
from repro.network import NetworkConfig, RoutingMode

from tests.helpers import run_gen, run_gens


def _alloc_slot(node):
    alloc = node.memory.alloc(64, align=64)
    node.memory.write(alloc.base, b"\x00" * 16)
    return alloc.base, alloc.base + 8


def _arm(node, mailbox, size, threshold=None, etype=EpochType.EPOCH_BYTES,
         mode=BufferMode.STEERED):
    """Generator: window + one posted buffer; returns (buffer, notify, len)."""
    nic = node.nic
    yield nic.hw_init_window(mailbox, etype, mode)
    buf = HostBuffer.allocate(node.memory, size)
    notify, length_addr = _alloc_slot(node)
    yield nic.hw_post_buffer(mailbox, buf, threshold or size, notify, length_addr)
    return buf, notify, length_addr


def test_put_places_data_and_completes(rvma_pair):
    cl = rvma_pair
    payload = bytes(range(200))

    def receiver():
        buf, notify, length_addr = yield from _arm(cl.node(1), 0xA, 200)
        yield cl.node(1).waiter.wait_for_nonzero_u64(notify)
        return (
            buf.contents(),
            cl.node(1).memory.read_u64(notify),
            cl.node(1).memory.read_u64(length_addr),
            buf.addr,
        )

    def sender():
        yield 500.0
        op = cl.node(0).nic.hw_put(1, 0xA, 200, payload)
        yield op.local_done

    (contents, head, length, addr), _ = run_gens(cl.sim, receiver(), sender())
    assert contents == payload
    assert head == addr and length == 200


def test_put_offset_places_at_offset(rvma_pair):
    cl = rvma_pair

    def receiver():
        buf, notify, _ = yield from _arm(cl.node(1), 0xB, 100, threshold=10)
        yield cl.node(1).waiter.wait_for_nonzero_u64(notify)
        return buf.contents()

    def sender():
        yield 500.0
        op = cl.node(0).nic.hw_put(1, 0xB, 10, b"ABCDEFGHIJ", offset=50)
        yield op.local_done

    contents, _ = run_gens(cl.sim, receiver(), sender())
    assert contents[50:60] == b"ABCDEFGHIJ"
    assert contents[:50] == b"\x00" * 50


def test_ops_threshold_counts_operations(rvma_pair):
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0xC, EpochType.EPOCH_OPS)
        buf = HostBuffer.allocate(node.memory, 128)
        notify, length_addr = _alloc_slot(node)
        yield node.nic.hw_post_buffer(0xC, buf, 3, notify, length_addr)
        yield node.waiter.wait_for_nonzero_u64(notify)
        entry = node.nic.lut.lookup(0xC)
        return (entry.epoch, node.memory.read_u64(length_addr))

    def sender():
        yield 500.0
        for i in range(3):
            op = cl.node(0).nic.hw_put(1, 0xC, 16, b"x" * 16, offset=16 * i)
            yield op.local_done

    (epoch, length), _ = run_gens(cl.sim, receiver(), sender())
    assert epoch == 1
    assert length == 48  # high-water mark of the three writes


def test_no_completion_below_threshold(rvma_pair):
    cl = rvma_pair

    def receiver():
        buf, notify, _ = yield from _arm(cl.node(1), 0xD, 100, threshold=100)
        yield 20000.0
        return cl.node(1).memory.read_u64(notify)

    def sender():
        yield 500.0
        op = cl.node(0).nic.hw_put(1, 0xD, 60, b"y" * 60)
        yield op.local_done

    notify_val, _ = run_gens(cl.sim, receiver(), sender())
    assert notify_val == 0  # threshold not reached: host sees nothing


def test_put_to_unknown_mailbox_retries_then_fails(rvma_pair):
    cl = rvma_pair

    def sender():
        op = cl.node(0).nic.hw_put(1, 0xDEAD, 8, b"12345678")
        yield op.local_done
        return op

    op = run_gen(cl.sim, sender())  # drains all retries
    assert op.nacked is NackReason.NO_MAILBOX
    assert cl.node(0).nic.nacks_received[0].reason is NackReason.NO_MAILBOX
    # The put is retried (the mailbox might have been mid-initialisation)
    # and, with the window never appearing, is eventually declared lost.
    retries = cl.node(0).nic.cfg.put_retries
    assert cl.sim.stats.counter("rvma1.nacks_no_mailbox").value == retries + 1
    assert cl.sim.stats.counter("rvma0.put_retries").value == retries
    assert cl.sim.stats.counter("rvma0.puts_lost").value == 1


def test_put_to_closed_window_nacks(rvma_pair):
    cl = rvma_pair

    def receiver():
        yield from _arm(cl.node(1), 0xE, 64)
        yield cl.node(1).nic.hw_close(0xE)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0xE, 8, b"12345678")
        yield op.local_done
        yield 5000.0
        return op

    _, op = run_gens(cl.sim, receiver(), sender())
    assert op.nacked is NackReason.CLOSED


def test_out_of_bounds_put_nacks(rvma_pair):
    cl = rvma_pair

    def receiver():
        yield from _arm(cl.node(1), 0xF, 32)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0xF, 16, b"z" * 16, offset=20)
        yield op.local_done
        yield 5000.0
        return op

    _, op = run_gens(cl.sim, receiver(), sender())
    assert op.nacked is NackReason.OUT_OF_BOUNDS


def test_no_buffer_nack_retries_then_succeeds(rvma_pair):
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0x10, EpochType.EPOCH_BYTES)
        # Post the buffer only after the put has been NACKed once.
        yield 8000.0
        buf = HostBuffer.allocate(node.memory, 64)
        notify, length_addr = _alloc_slot(node)
        yield node.nic.hw_post_buffer(0x10, buf, 64, notify, length_addr)
        yield node.waiter.wait_for_nonzero_u64(notify)
        return buf.contents()

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x10, 64, b"R" * 64)
        yield op.local_done

    contents, _ = run_gens(cl.sim, receiver(), sender())
    assert contents == b"R" * 64
    assert cl.sim.stats.counter("rvma0.put_retries").value >= 1
    assert cl.sim.stats.counter("rvma0.puts_lost").value == 0


def test_nacks_can_be_disabled(rvma_pair):
    cl = rvma_pair
    cl.node(1).nic.cfg.send_nacks = False

    def sender():
        op = cl.node(0).nic.hw_put(1, 0xBAD, 8, b"12345678")
        yield op.local_done
        yield 5000.0
        return op

    op = run_gen(cl.sim, sender())
    assert op.nacked is None
    assert cl.node(0).nic.nacks_received == []


def test_catch_all_receives_unmatched(rvma_pair):
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0xCA, EpochType.EPOCH_OPS, BufferMode.MANAGED)
        buf = HostBuffer.allocate(node.memory, 256)
        notify, length_addr = _alloc_slot(node)
        yield node.nic.hw_post_buffer(0xCA, buf, 1, notify, length_addr)
        yield node.nic.hw_set_catch_all(0xCA)
        yield node.waiter.wait_for_nonzero_u64(notify)
        return buf.contents()[:9]

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x404, 9, b"unmatched")
        yield op.local_done

    contents, _ = run_gens(cl.sim, receiver(), sender())
    assert contents == b"unmatched"
    assert cl.sim.stats.counter("rvma1.catch_all_hits").value >= 1


def test_inc_epoch_preempts_completion(rvma_pair):
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        buf, notify, length_addr = yield from _arm(cl.node(1), 0x11, 100, threshold=100)
        yield 5000.0  # partial data has arrived by now
        record = yield node.nic.hw_inc_epoch(0x11)
        yield node.waiter.wait_for_nonzero_u64(notify)
        return record, node.memory.read_u64(length_addr)

    def sender():
        yield 500.0
        op = cl.node(0).nic.hw_put(1, 0x11, 40, b"p" * 40)
        yield op.local_done

    (record, length), _ = run_gens(cl.sim, receiver(), sender())
    assert isinstance(record, RetiredBuffer)
    assert length == 40  # partial length reported


def test_get_reads_active_buffer(rvma_pair):
    cl = rvma_pair

    def receiver():
        buf, _, _ = yield from _arm(cl.node(1), 0x12, 64, threshold=64)
        buf.write(0, b"G" * 64)

    def getter():
        yield 3000.0
        node = cl.node(0)
        dest = HostBuffer.allocate(node.memory, 32)
        op = node.nic.hw_get(1, 0x12, 32, dest, offset=16)
        ok = yield op.done
        return ok, dest.contents()

    _, (ok, data) = run_gens(cl.sim, receiver(), getter())
    assert ok is True
    assert data == b"G" * 32


def test_get_out_of_bounds_fails(rvma_pair):
    cl = rvma_pair

    def receiver():
        yield from _arm(cl.node(1), 0x13, 64)

    def getter():
        yield 3000.0
        node = cl.node(0)
        dest = HostBuffer.allocate(node.memory, 128)
        op = node.nic.hw_get(1, 0x13, 128, dest)
        ok = yield op.done
        return ok

    _, ok = run_gens(cl.sim, receiver(), getter())
    assert ok is False


def test_epoch_query_and_rewind(rvma_pair):
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0x14, EpochType.EPOCH_BYTES)
        for _ in range(2):
            buf = HostBuffer.allocate(node.memory, 16)
            notify, length_addr = _alloc_slot(node)
            yield node.nic.hw_post_buffer(0x14, buf, 16, notify, length_addr)
        yield 20000.0
        epoch = yield node.nic.hw_get_epoch(0x14)
        record = yield node.nic.hw_rewind(0x14, 1)
        return epoch, record

    def sender():
        yield 500.0
        for _ in range(2):
            op = cl.node(0).nic.hw_put(1, 0x14, 16, b"e" * 16)
            yield op.local_done
            yield 3000.0

    (epoch, record), _ = run_gens(cl.sim, receiver(), sender())
    assert epoch == 2
    assert record.epoch == 1 and record.length == 16


def test_failed_nic_drops_traffic(rvma_pair):
    cl = rvma_pair

    def receiver():
        yield from _arm(cl.node(1), 0x15, 64)
        cl.node(1).nic.fail()

    def sender():
        yield 3000.0
        op = cl.node(0).nic.hw_put(1, 0x15, 64, b"d" * 64)
        yield op.local_done
        yield 10000.0

    run_gens(cl.sim, receiver(), sender())
    assert cl.sim.stats.counter("rvma1.rx_dropped_failed").value >= 1
    assert cl.sim.stats.counter("rvma1.bytes_placed").value == 0


def test_zero_byte_put_signals_ops_threshold(rvma_pair):
    """A 0-byte put is a pure doorbell: no data, but it counts as one
    operation — usable as a lightweight remote signal."""
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0x20, EpochType.EPOCH_OPS)
        buf = HostBuffer.allocate(node.memory, 8)
        notify, length_addr = _alloc_slot(node)
        yield node.nic.hw_post_buffer(0x20, buf, 1, notify, length_addr)
        yield node.waiter.wait_for_nonzero_u64(notify)
        return node.memory.read_u64(length_addr)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x20, 0)
        yield op.local_done

    length, _ = run_gens(cl.sim, receiver(), sender())
    assert length == 0  # completed with zero payload bytes


def test_zero_byte_put_never_completes_byte_threshold(rvma_pair):
    cl = rvma_pair

    def receiver():
        buf, notify, _ = yield from _arm(cl.node(1), 0x21, 16, threshold=16)
        yield 20000.0
        return cl.node(1).memory.read_u64(notify)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x21, 0)
        yield op.local_done

    notify_val, _ = run_gens(cl.sim, receiver(), sender())
    assert notify_val == 0


def test_managed_window_ignores_put_offsets(rvma_pair):
    """Receiver-Managed placement appends in arrival order; initiator
    offsets are meaningless and must not move the write cursor."""
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0x22, EpochType.EPOCH_BYTES, BufferMode.MANAGED)
        buf = HostBuffer.allocate(node.memory, 8)
        notify, length_addr = _alloc_slot(node)
        yield node.nic.hw_post_buffer(0x22, buf, 8, notify, length_addr)
        yield node.waiter.wait_for_nonzero_u64(notify)
        return buf.contents()

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x22, 4, b"ABCD", offset=100)  # bogus offset
        yield op.local_done
        yield 3000.0
        op = cl.node(0).nic.hw_put(1, 0x22, 4, b"EFGH", offset=0)
        yield op.local_done

    contents, _ = run_gens(cl.sim, receiver(), sender())
    assert contents == b"ABCDEFGH"  # pure append, offsets ignored


def test_put_handle_window_bounds_memory(rvma_pair):
    cl = rvma_pair
    nic = cl.node(0).nic
    nic.cfg.put_window = 8

    def receiver():
        yield from _arm(cl.node(1), 0x23, 8, threshold=8)

    def sender():
        yield 2000.0
        for _ in range(50):
            op = nic.hw_put(1, 0x23, 0)  # zero-byte signals
            yield op.local_done

    run_gens(cl.sim, receiver(), sender())
    assert len(nic._puts) <= 8


def test_zero_byte_put_counts_op_on_managed_window(rvma_pair):
    cl = rvma_pair

    def receiver():
        node = cl.node(1)
        yield node.nic.hw_init_window(0x24, EpochType.EPOCH_OPS, BufferMode.MANAGED)
        buf = HostBuffer.allocate(node.memory, 16)
        notify, length_addr = _alloc_slot(node)
        yield node.nic.hw_post_buffer(0x24, buf, 1, notify, length_addr)
        yield node.waiter.wait_for_nonzero_u64(notify)
        return node.memory.read_u64(length_addr)

    def sender():
        yield 2000.0
        op = cl.node(0).nic.hw_put(1, 0x24, 0)
        yield op.local_done

    length, _ = run_gens(cl.sim, receiver(), sender())
    assert length == 0
