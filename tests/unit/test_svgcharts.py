"""Unit tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.report import ExperimentResult
from repro.experiments.svgcharts import bar_chart, line_chart_logx, svg_for_result


def _parse(svg: str):
    return ET.fromstring(svg)  # raises on malformed XML


def test_line_chart_is_valid_svg_with_series():
    svg = line_chart_logx(
        [2, 64, 1024], {"a": [1, 2, 3], "b": [3, 2, 1]},
        "T", "x", "y", reference=2.5,
    )
    root = _parse(svg)
    assert root.tag.endswith("svg")
    polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
    assert len(polylines) == 2
    assert "paper 2.5" in svg


def test_bar_chart_is_valid_svg_with_bars():
    svg = bar_chart(["a/b", "c/d"], [1.5, 2.5], "T", "speedup", reference=2.0)
    root = _parse(svg)
    rects = [e for e in root.iter() if e.tag.endswith("rect")]
    assert len(rects) == 3  # background + 2 bars
    assert "2.50" in svg


def test_charts_validate_inputs():
    with pytest.raises(ValueError):
        line_chart_logx([], {}, "T", "x", "y")
    with pytest.raises(ValueError):
        bar_chart([], [], "T", "y")


def _result(name, rows, claims=None):
    return ExperimentResult(name=name, title="t", headers=["x"] * 6, rows=rows,
                            paper_claims=claims or {})


def test_svg_for_each_figure_shape():
    fig4 = _result("fig4", [[2, 800, 2100, 63.0, 2.7], [64, 820, 2120, 61.0, 2.6]])
    assert "polyline" in svg_for_result(fig4)
    fig7 = _result("fig7", [["dragonfly", "adaptive", "2Tbps", 1, 4, 4.1]],
                   {"avg_speedup": 3.56})
    svg7 = svg_for_result(fig7)
    assert "dragonfly/adaptive/2Tbps" in svg7 and "3.56" in svg7
    fig6 = _result("fig6", [[16, 9000, 900, 305, 2500, 117],
                            [4096, 9500, 2800, 120, 4400, 77]])
    assert "amortize" in svg_for_result(fig6)
    generic = _result("ablation-x", [["gen4", 400.0]])
    _parse(svg_for_result(generic))
