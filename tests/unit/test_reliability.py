"""Unit tests: reliability transport, failure detector, fault injector.

Covers the retransmission backoff schedule, duplicate suppression at
the receiver, retry-budget exhaustion feeding the failure detector,
per-fault injector selectors, fault-filter chaining/restore, and the
heartbeat failure detector's timing rules.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.faults import FaultInjector
from repro.network.message import Delivery, DeliveryInfo, Message
from repro.nic.headers import ReliAckHeader, SeqHeader
from repro.nic.rvma import RvmaNicConfig
from repro.reliability import ReliabilityConfig
from repro.reliability.transport import _RxFlow

from tests.helpers import run_gens

MAILBOX = 0xAB


def _cluster(cfg: ReliabilityConfig = None, fidelity: str = "flow", seed: int = 7):
    return Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity=fidelity, seed=seed,
        nic_config=RvmaNicConfig(
            reliability=cfg
            or ReliabilityConfig(
                retransmit_timeout=5_000.0,
                heartbeat_interval=10_000.0,
                min_suspicion_timeout=60_000.0,
            )
        ),
    )


def _delivery(src: int, dst: int, data: bytes = b"\x42" * 8) -> Delivery:
    msg = Message(src=src, dst=dst, size=len(data), data=data)
    return Delivery(msg, DeliveryInfo(send_time=0.0, arrival_time=0.0, hops=1))


# --------------------------------------------------------------- transport


def test_backoff_schedule_grows_geometrically_and_caps():
    cfg = ReliabilityConfig(
        retransmit_timeout=1_000.0, backoff_factor=2.0, max_backoff=4_000.0,
        jitter_frac=0.1, max_retries=5,
    )
    cl = _cluster(cfg)
    api0 = RvmaApi(cl.node(0))
    # Black hole: every data envelope vanishes; ACKs would never exist.
    cl.fabric.fault_filter = lambda d: isinstance(d.message.header, SeqHeader)

    transport = cl.node(0).nic.transport
    times = []
    orig = transport._transmit

    def recording_transmit(rec):
        times.append(cl.sim.now)
        return orig(rec)

    transport._transmit = recording_transmit

    def tx():
        op = yield from api0.put(1, MAILBOX, size=64)
        yield op.local_done

    run_gens(cl.sim, tx())

    assert len(times) == 1 + cfg.max_retries  # original + every retry
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Nominal schedule 1000, 2000, 4000, 4000(cap), 4000(cap); each gap
    # stretched by the deterministic jitter in [1, 1+jitter_frac].
    nominal = [1_000.0, 2_000.0, 4_000.0, 4_000.0, 4_000.0]
    for gap, base in zip(gaps, nominal):
        assert base <= gap <= base * (1.0 + cfg.jitter_frac) + 1e-9
    assert cl.sim.stats.counter("reliability.rel_retransmits").value == cfg.max_retries
    assert cl.sim.stats.counter("reliability.rel_gave_up").value == 1
    assert transport.unacked() == 0  # abandoned, not leaked


def test_retry_budget_exhaustion_raises_peer_failed():
    cfg = ReliabilityConfig(retransmit_timeout=1_000.0, max_retries=3)
    cl = _cluster(cfg)
    api0 = RvmaApi(cl.node(0))
    cl.fabric.fault_filter = lambda d: isinstance(d.message.header, SeqHeader)

    def tx():
        op = yield from api0.put(1, MAILBOX, size=64)
        yield op.local_done
        record = yield from api0.wait_peer_failure(1)
        return record

    (record,) = run_gens(cl.sim, tx())
    assert record.peer == 1
    assert "retry budget" in record.reason
    assert api0.peer_suspected(1)


def test_lost_acks_cause_dup_suppression_not_double_placement():
    nbytes = 2_048
    cfg = ReliabilityConfig(retransmit_timeout=20_000.0, max_retries=8)
    cl = _cluster(cfg, fidelity="packet")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    # Drop the first two ACKs: the data arrives, the sender can't know,
    # retransmits, and the receiver must suppress the duplicates.
    lost = {"n": 0}

    def eat_acks(d):
        if isinstance(d.message.header, ReliAckHeader) and lost["n"] < 2:
            lost["n"] += 1
            return True
        return False

    cl.fabric.fault_filter = eat_acks
    payload = bytes(i % 256 for i in range(nbytes))
    got = {}

    def rx():
        win = yield from api1.init_window(MAILBOX, epoch_threshold=nbytes)
        yield from api1.post_buffer(win, size=nbytes)
        info = yield from api1.wait_completion(win)
        got["data"] = info.read_data()

    def tx():
        op = yield from api0.put(1, MAILBOX, data=payload)
        yield op.local_done

    run_gens(cl.sim, rx(), tx())
    assert got["data"] == payload
    assert lost["n"] == 2
    stats = cl.sim.stats
    assert stats.counter("reliability.rel_dups_suppressed").value >= 1
    # Placement stayed idempotent: exactly one buffer's worth of bytes.
    assert stats.counter("rvma1.bytes_placed").value == nbytes
    assert stats.counter("rvma1.epochs_completed").value == 1
    assert cl.node(0).nic.transport.unacked() == 0


def test_rx_flow_cumulative_edge_and_sacks():
    rx = _RxFlow()
    rx.advance(2)  # out of order: seq 1 still missing
    assert rx.seen(2) and not rx.seen(1)
    assert rx.cum == 0 and rx.complete == {2}
    rx.advance(1)  # hole filled: edge slides past both
    assert rx.cum == 2 and rx.complete == set()
    assert rx.seen(1) and rx.seen(2) and not rx.seen(3)


def test_reliable_put_survives_heavy_random_loss():
    nbytes = 8_192
    cfg = ReliabilityConfig(retransmit_timeout=8_000.0, max_retries=10)
    cl = _cluster(cfg, fidelity="packet")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    FaultInjector(cl).drop_messages(0.3)
    payload = bytes((7 * i) % 256 for i in range(nbytes))
    got = {}

    def rx():
        win = yield from api1.init_window(MAILBOX, epoch_threshold=nbytes)
        yield from api1.post_buffer(win, size=nbytes)
        info = yield from api1.wait_completion(win)
        got["data"] = info.read_data()

    def tx():
        op = yield from api0.put(1, MAILBOX, data=payload)
        yield op.local_done

    run_gens(cl.sim, rx(), tx())
    assert got["data"] == payload
    assert cl.sim.stats.counter("rvma1.bytes_placed").value == nbytes


# --------------------------------------------------------------- injector


def test_drop_and_corrupt_keep_independent_selectors():
    cl = Cluster.build(n_nodes=3, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    to_node1 = lambda d: d.message.dst == 1  # noqa: E731
    from_node0 = lambda d: d.message.src == 0  # noqa: E731
    inj.drop_messages(1.0, selector=to_node1)
    inj.corrupt_payloads(1.0, selector=from_node0)
    # Regression: these used to share one selector slot, so the second
    # call silently re-scoped the first fault.
    assert inj._drop_selector is to_node1
    assert inj._corrupt_selector is from_node0

    fault_filter = cl.fabric.fault_filter
    assert fault_filter(_delivery(src=2, dst=1)) is True  # drop rule
    d = _delivery(src=0, dst=2, data=b"\x00" * 4)
    assert fault_filter(d) is False  # not dropped...
    assert d.message.data[0] == 0xFF  # ...but corrupted (src 0 rule)
    d2 = _delivery(src=2, dst=0, data=b"\x00" * 4)
    assert fault_filter(d2) is False
    assert d2.message.data[0] == 0x00  # untouched: matches neither


def test_fault_filters_chain_and_clear_restores_previous_hook():
    cl = Cluster.build(n_nodes=4, topology="star", nic_type="rvma", fidelity="flow")
    prev_calls = []
    prev = lambda d: (prev_calls.append(d), False)[1]  # noqa: E731
    cl.fabric.fault_filter = prev

    inj = FaultInjector(cl)
    inj.drop_messages(1.0, selector=lambda d: d.message.dst == 1)
    assert cl.fabric.fault_filter is not prev
    assert cl.fabric.fault_filter(_delivery(0, 1)) is True
    assert not prev_calls  # short-circuits on its own drop
    assert cl.fabric.fault_filter(_delivery(0, 3)) is False
    assert len(prev_calls) == 1  # passed through to the prior hook

    # A second injector chains onto the first instead of clobbering it.
    inj2 = FaultInjector(cl)
    inj2.drop_messages(1.0, selector=lambda d: d.message.dst == 2)
    assert cl.fabric.fault_filter(_delivery(0, 1)) is True  # inj's rule
    assert cl.fabric.fault_filter(_delivery(0, 2)) is True  # inj2's rule
    assert cl.fabric.fault_filter(_delivery(0, 3)) is False

    inj2.clear()  # head of the chain: restores inj's filter...
    assert cl.fabric.fault_filter(_delivery(0, 2)) is False
    assert cl.fabric.fault_filter(_delivery(0, 1)) is True
    inj.clear()  # ...and unwinding fully restores the original hook.
    assert cl.fabric.fault_filter is prev


def test_cleared_mid_chain_injector_becomes_pass_through():
    cl = Cluster.build(n_nodes=3, topology="star", nic_type="rvma", fidelity="flow")
    inj1, inj2 = FaultInjector(cl), FaultInjector(cl)
    inj1.drop_messages(1.0, selector=lambda d: d.message.dst == 1)
    inj2.drop_messages(1.0, selector=lambda d: d.message.dst == 2)
    inj1.clear()  # not at the head: must disarm without breaking inj2
    assert cl.fabric.fault_filter(_delivery(0, 1)) is False  # inj1 off
    assert cl.fabric.fault_filter(_delivery(0, 2)) is True  # inj2 alive


def test_drop_window_rejects_empty_interval():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    inj = FaultInjector(cl)
    with pytest.raises(ValueError):
        inj.drop_window(5_000.0, 5_000.0)
    with pytest.raises(ValueError):
        inj.drop_window(5_000.0, 1_000.0)


def test_window_drops_are_attributed_by_kind():
    cl = _cluster()
    api0 = RvmaApi(cl.node(0))
    inj = FaultInjector(cl)
    inj.partition({1}, start=0.0, end=2_000.0)

    def tx():
        op = yield from api0.put(1, MAILBOX, size=64)
        yield op.local_done

    run_gens(cl.sim, tx())
    assert inj.log.window_drops.get("partition", 0) >= 1
    assert inj.log.total_window_drops == inj.log.messages_dropped
    assert cl.sim.stats.counter("faults.drops_partition").value >= 1
    assert any("partition" in line for line in inj.summary())


# --------------------------------------------------------------- detector


def test_detector_suspects_dead_peer_within_timeout():
    cl = _cluster()
    api1 = RvmaApi(cl.node(1))
    inj = FaultInjector(cl)
    t_kill = 50_000.0
    inj.fail_node_at(0, t_kill)

    def watcher():
        record = yield from api1.wait_peer_failure(0)
        return record

    (record,) = run_gens(cl.sim, watcher())
    cfg = cl.node(1).nic.detector.cfg
    assert record.peer == 0
    assert record.time > t_kill
    # Bounded detection: suspicion timeout plus at most two tick periods.
    assert record.time <= t_kill + cfg.min_suspicion_timeout + 2 * cfg.heartbeat_interval


def test_watch_deadline_lets_healthy_run_terminate():
    cl = _cluster()
    api1 = RvmaApi(cl.node(1))
    watch = api1.watch_peer(0, deadline=100_000.0)
    cl.sim.run()  # would spin forever if the ping loop never unwound
    assert not watch.active
    assert not api1.peer_suspected(0)


def test_force_suspect_resolves_future_immediately():
    cl = _cluster()
    api1 = RvmaApi(cl.node(1))
    fut = api1.peer_failure(0)
    cl.node(1).nic.detector.force_suspect(0, "unit-test evidence")
    assert fut.done
    assert fut.value.peer == 0 and fut.value.reason == "unit-test evidence"
    # Watching an already-suspected peer resolves without a ping loop.
    assert api1.peer_failure(0).done


def test_suspicion_timeout_adapts_to_observed_intervals():
    cl = _cluster()
    det = cl.node(1).nic.detector
    cfg = det.cfg
    assert det.suspicion_timeout(0) == cfg.min_suspicion_timeout  # floor
    # Feed slow proofs of life: the adaptive term overtakes the floor.
    for t in (0.0, 100_000.0, 200_000.0, 300_000.0):
        cl.sim.now = t  # direct clock poke: unit-testing the math only
        det.heard_from(0)
    assert det.suspicion_timeout(0) == pytest.approx(cfg.suspicion_phi * 100_000.0)
