"""Unit tests for the user-facing RVMA API (paper §III-C surface)."""

import pytest

from repro.core import (
    BufferMode,
    EpochType,
    RvmaApi,
    RvmaApiError,
    RvmaStatus,
)
from repro.memory.buffer import HostBuffer
from repro.memory.mwait import POLL

from tests.helpers import run_gen, run_gens


def _apis(cluster):
    return RvmaApi(cluster.node(0)), RvmaApi(cluster.node(1))


def test_init_window_returns_handle(rvma_pair):
    api0, api1 = _apis(rvma_pair)

    def proc():
        win = yield from api1.init_window(0x100, epoch_threshold=64)
        return win

    win = run_gen(rvma_pair.sim, proc())
    assert win.virtual_addr == 0x100
    assert win.epoch_type is EpochType.EPOCH_BYTES
    assert win.key != 0
    assert win.buffers_outstanding == 0


def test_init_window_validates_threshold(rvma_pair):
    _, api1 = _apis(rvma_pair)
    with pytest.raises(RvmaApiError):
        next(api1.init_window(0x100, epoch_threshold=0))


def test_init_window_lut_exhaustion_surfaces_status(rvma_pair):
    _, api1 = _apis(rvma_pair)
    api1.nic.lut.max_entries = 1

    def proc():
        yield from api1.init_window(0x1, epoch_threshold=8)
        yield from api1.init_window(0x2, epoch_threshold=8)

    with pytest.raises(RvmaApiError) as exc:
        run_gen(rvma_pair.sim, proc())
    assert exc.value.status is RvmaStatus.ERR_NO_RESOURCES


def test_post_buffer_allocates_or_wraps(rvma_pair):
    _, api1 = _apis(rvma_pair)

    def proc():
        win = yield from api1.init_window(0x101, epoch_threshold=32)
        rec1 = yield from api1.post_buffer(win, size=32)
        own = HostBuffer.allocate(api1.node.memory, 64)
        rec2 = yield from api1.post_buffer(win, buffer=own)
        return win, rec1, rec2, own

    win, rec1, rec2, own = run_gen(rvma_pair.sim, proc())
    assert rec1.buffer.size == 32
    assert rec2.buffer is own
    assert win.buffers_outstanding == 2
    # Notification slots are distinct cache lines, zeroed.
    assert rec1.notification_addr != rec2.notification_addr
    assert rec1.length_addr == rec1.notification_addr + 8


def test_post_buffer_argument_validation(rvma_pair):
    _, api1 = _apis(rvma_pair)

    def both():
        win = yield from api1.init_window(0x102, epoch_threshold=8)
        buf = HostBuffer.allocate(api1.node.memory, 8)
        yield from api1.post_buffer(win, size=8, buffer=buf)

    with pytest.raises(RvmaApiError):
        run_gen(rvma_pair.sim, both())


def test_post_buffer_threshold_exceeding_buffer_rejected(rvma_pair):
    _, api1 = _apis(rvma_pair)

    def proc():
        win = yield from api1.init_window(0x103, epoch_threshold=128)
        yield from api1.post_buffer(win, size=64)  # 128B threshold > 64B buffer

    with pytest.raises(RvmaApiError):
        run_gen(rvma_pair.sim, proc())


def test_put_wait_completion_roundtrip(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)
    payload = b"roundtrip!" * 10

    def receiver():
        win = yield from api1.init_window(0x104, epoch_threshold=len(payload))
        yield from api1.post_buffer(win, size=len(payload))
        info = yield from api1.wait_completion(win)
        return info

    def sender():
        yield 2000.0
        op = yield from api0.put(1, 0x104, data=payload)
        yield op.local_done

    info, _ = run_gens(cl.sim, receiver(), sender())
    assert info.length == len(payload)
    assert info.read_data() == payload


def test_wait_completion_with_poll_model(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)

    def receiver():
        win = yield from api1.init_window(0x105, epoch_threshold=8)
        yield from api1.post_buffer(win, size=8)
        info = yield from api1.wait_completion(win, POLL)
        return info.length

    def sender():
        yield 2000.0
        yield from api0.put(1, 0x105, data=b"12345678")

    length, _ = run_gens(cl.sim, receiver(), sender())
    assert length == 8


def test_wait_completion_without_posted_buffer_raises(rvma_pair):
    _, api1 = _apis(rvma_pair)

    def proc():
        win = yield from api1.init_window(0x106, epoch_threshold=8)
        yield from api1.wait_completion(win)

    with pytest.raises(IndexError):
        run_gen(rvma_pair.sim, proc())


def test_win_get_buf_ptrs_harvests_completed_only(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)

    def receiver():
        win = yield from api1.init_window(0x107, epoch_threshold=8)
        for _ in range(3):
            yield from api1.post_buffer(win, size=8)
        yield 25000.0  # two puts arrive, third buffer stays incomplete
        return win, api1.win_get_buf_ptrs(win, count=10)

    def sender():
        yield 2000.0
        for _ in range(2):
            op = yield from api0.put(1, 0x107, size=8)
            yield op.local_done
            yield 3000.0

    (win, ptrs), _ = run_gens(cl.sim, receiver(), sender())
    assert len(ptrs) == 2
    assert ptrs[0] == win.posted[0].buffer.addr
    assert ptrs[1] == win.posted[1].buffer.addr
    # count limits the harvest
    assert len(api1.win_get_buf_ptrs(win, count=1)) == 1


def test_win_get_epoch_and_inc_epoch(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)

    def receiver():
        win = yield from api1.init_window(0x108, epoch_threshold=100)
        yield from api1.post_buffer(win, size=100)
        e0 = yield from api1.win_get_epoch(win)
        status = yield from api1.win_inc_epoch(win)
        e1 = yield from api1.win_get_epoch(win)
        return e0, status, e1

    e0, status, e1 = run_gen(cl.sim, receiver())
    assert (e0, e1) == (0, 1)
    assert status is RvmaStatus.SUCCESS


def test_inc_epoch_with_empty_bucket(rvma_pair):
    _, api1 = _apis(rvma_pair)

    def proc():
        win = yield from api1.init_window(0x109, epoch_threshold=8)
        status = yield from api1.win_inc_epoch(win)
        return status

    assert run_gen(rvma_pair.sim, proc()) is RvmaStatus.ERR_NO_BUFFER


def test_close_win_discards_future_puts(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)

    def receiver():
        win = yield from api1.init_window(0x10A, epoch_threshold=8)
        yield from api1.post_buffer(win, size=8)
        status = yield from api1.close_win(win)
        return win, status

    def sender():
        yield 5000.0
        op = yield from api0.put(1, 0x10A, size=8)
        yield op.local_done
        yield 5000.0
        return op

    (win, status), op = run_gens(cl.sim, receiver(), sender())
    assert status is RvmaStatus.SUCCESS and win.closed
    assert op.nacked is not None


def test_get_api(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)

    def receiver():
        win = yield from api1.init_window(0x10B, epoch_threshold=64)
        rec = yield from api1.post_buffer(win, size=64)
        rec.buffer.write(0, b"S" * 64)

    def getter():
        yield 3000.0
        op = yield from api0.get(1, 0x10B, length=64)
        ok = yield op.done
        return ok

    _, ok = run_gens(cl.sim, receiver(), getter())
    assert ok is True


def test_rewind_api(rvma_pair):
    cl = rvma_pair
    api0, api1 = _apis(cl)

    def receiver():
        win = yield from api1.init_window(0x10C, epoch_threshold=16)
        yield from api1.post_buffer(win, size=16)
        yield from api1.post_buffer(win, size=16)
        yield from api1.wait_completion(win)
        record = yield from api1.rewind(win, 1)
        return record

    def sender():
        yield 2000.0
        yield from api0.put(1, 0x10C, data=b"F" * 16)

    record, _ = run_gens(cl.sim, receiver(), sender())
    assert record is not None and record.length == 16


def test_api_requires_rvma_nic(rdma_pair):
    with pytest.raises(TypeError):
        RvmaApi(rdma_pair.node(0))


def test_put_negative_args_rejected(rvma_pair):
    api0, _ = _apis(rvma_pair)
    with pytest.raises(RvmaApiError):
        next(api0.put(1, 0x1, size=-5))
