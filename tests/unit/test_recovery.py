"""Unit: crash-restart recovery building blocks.

Journals, checkpoints, the rejoin bookkeeping, the failure detector's
reinstate path, the initiator give-up counters, and — load-bearing for
the whole robustness story — the runtime invariant auditor catching a
seeded double-placement corruption instead of letting it pass silently.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi, negotiate_consistent_epoch
from repro.nic.rvma import RvmaNicConfig
from repro.recovery import (
    AuditError,
    CheckpointDaemon,
    InvariantAuditor,
    OpJournal,
    SendJournal,
)
from repro.reliability import ReliabilityConfig

from tests.helpers import run_gens


def _cluster(reliability=False, **nic_kw):
    rel = (
        ReliabilityConfig(retransmit_timeout=5_000.0, max_retries=6)
        if reliability
        else None
    )
    return Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        nic_config=RvmaNicConfig(reliability=rel, **nic_kw),
    )


# ---------------------------------------------------------------------- journals


def test_send_journal_replay_coverage_and_holes():
    j = SendJournal(retain=8)
    for seq in range(1, 6):
        j.note_send(dst=1, flow=0x9, seq=seq, size=64, header=f"h{seq}", data=b"", mode=None)
    entries, hole = j.entries_after(1, 0x9, cum=2)
    assert [e.seq for e in entries] == [3, 4, 5]
    assert hole is None
    assert j.next_seq_hint(1, 0x9) == 6
    assert j.flows_for(1) == [0x9]
    assert j.peers() == {1}
    # An unknown flow is empty coverage, not an error.
    assert j.entries_after(1, 0xFF, cum=0) == ([], None)


def test_send_journal_bounded_retention_reports_hole():
    j = SendJournal(retain=3)
    for seq in range(1, 7):  # journal retains only seqs 4..6
        j.note_send(dst=2, flow=0x1, seq=seq, size=64, header=None, data=b"", mode=None)
    entries, hole = j.entries_after(2, 0x1, cum=1)
    assert [e.seq for e in entries] == [4, 5, 6]
    assert hole == 4  # peer needs seq 2 but the oldest retained is 4
    entries, hole = j.entries_after(2, 0x1, cum=3)
    assert hole is None  # peer's edge reaches the retained range


def test_op_journal_reinit_starts_fresh_incarnation():
    from repro.nic.lut import BufferMode, EpochType

    j = OpJournal()
    j.note_init(0x9, EpochType.EPOCH_BYTES, BufferMode.STEERED)
    j.note_post(0x9, "pb0")
    j.note_close(0x9)
    j.note_catch_all(0x9)
    assert j.windows[0x9].closed
    assert len(j.windows[0x9].posts) == 1
    j.note_init(0x9, EpochType.EPOCH_OPS, BufferMode.MANAGED)
    assert not j.windows[0x9].closed
    assert j.windows[0x9].posts == []
    assert j.windows[0x9].threshold_type is EpochType.EPOCH_OPS
    assert j.catch_all == 0x9
    # Posts against never-initialised windows are ignored, not errors.
    j.note_post(0xDEAD, "pb")
    assert 0xDEAD not in j.windows


# ---------------------------------------------------------------------- checkpoints


def test_checkpoint_daemon_snapshots_window_state():
    cl = _cluster()
    api1 = RvmaApi(cl.node(1))

    def producer():
        yield 500.0
        op = yield from RvmaApi(cl.node(0)).put(1, 0x9, data=bytes(range(128)))
        yield op.local_done

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=128)
        yield from api1.post_buffer(win, size=128)
        yield from api1.post_buffer(win, size=128)
        info = yield from api1.wait_completion(win)
        return info

    run_gens(cl.sim, producer(), consumer())
    daemon = CheckpointDaemon(cl.node(1), interval_ns=1_000.0, horizon_ns=10_000.0)
    ckpt = daemon.take()
    assert ckpt is not None and daemon.taken == 1
    snap = ckpt.mailboxes[0x9]
    assert snap.epoch == 1  # one epoch completed
    assert len(snap.retired) == 1 and snap.retired[0].length == 128
    assert snap.active is not None and snap.active.counter == 0


def test_checkpoint_defers_while_pipeline_not_quiescent():
    cl = _cluster()
    nic = cl.node(1).nic
    daemon = CheckpointDaemon(cl.node(1), interval_ns=1_000.0, horizon_ns=10_000.0)
    nic._inflight_admits = 1  # data admitted but DMA not landed
    assert daemon.take() is None
    assert nic.stat("checkpoints_deferred").value == 1
    nic._inflight_admits = 0
    assert daemon.take() is not None
    # A crashed NIC has nothing to read either.
    nic.failed = True
    assert daemon.take() is None


# ---------------------------------------------------------------------- auditor


def test_auditor_catches_seeded_double_placement():
    """The acceptance scenario: corrupt the placement path on purpose —
    the same (epoch, offset, size) range written twice with divergent
    bytes — and the fail-fast auditor must raise, not shrug."""
    cl = _cluster()
    aud = InvariantAuditor(fail_fast=True).attach(cl)
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    failures = []

    def producer():
        yield 500.0
        op = yield from api0.put(1, 0x9, data=b"\xAA" * 64)
        yield op.local_done
        yield 2_000.0
        # Seeded corruption: a second placement of the same range with
        # different bytes (a buggy replay / dedup failure would do this).
        try:
            op = yield from api0.put(1, 0x9, data=b"\xBB" * 64)
            yield op.local_done
            yield 2_000.0
        except AuditError as exc:  # pragma: no cover - depends on driver
            failures.append(exc)

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=256)
        yield from api1.post_buffer(win, size=256)

    with pytest.raises(AuditError) as err:
        run_gens(cl.sim, producer(), consumer())
    v = err.value.violation
    assert v.kind == "double-placement"
    assert v.node == 1 and v.mailbox == 0x9
    assert "divergent bytes" in v.detail
    assert not aud.ok and aud.violations[0] is v


def test_auditor_collect_mode_reports_without_raising():
    cl = _cluster()
    aud = InvariantAuditor().attach(cl)
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def producer():
        yield 500.0
        for _ in range(2):  # identical bytes, same range: still a double
            op = yield from api0.put(1, 0x9, data=b"\xCC" * 32)
            yield op.local_done
            yield 2_000.0

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=128)
        yield from api1.post_buffer(win, size=128)

    run_gens(cl.sim, producer(), consumer())
    report = aud.report()
    assert report["ok"] is False
    assert any("double-placement" in line for line in report["violations"])
    assert report["checked"]["placements"] == 2
    assert cl.sim.stats.counter("recovery.audit_violations").value == 1


def test_auditor_sanctions_byte_identical_replay_only():
    cl = _cluster()
    aud = InvariantAuditor().attach(cl)
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    nic1 = cl.node(1).nic

    def producer():
        yield 500.0
        op = yield from api0.put(1, 0x9, data=b"\x11" * 64)
        yield op.local_done
        yield 2_000.0
        # A restore sanctions replay through the epoch active at crash.
        aud.note_restore(nic1, {0x9: 0}, {})
        op = yield from api0.put(1, 0x9, data=b"\x11" * 64)  # identical: fine
        yield op.local_done
        yield 2_000.0
        assert aud.ok
        op = yield from api0.put(1, 0x9, data=b"\x22" * 64)  # divergent: flagged
        yield op.local_done
        yield 2_000.0

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=256)
        yield from api1.post_buffer(win, size=256)

    run_gens(cl.sim, producer(), consumer())
    kinds = [v.kind for v in aud.violations]
    assert kinds == ["replay-divergence"]


def test_auditor_flags_transport_double_dispatch():
    aud = InvariantAuditor()
    aud.on_transport_dispatch(node=1, peer=0, flow=0x9, seq=7)
    aud.on_transport_dispatch(node=1, peer=0, flow=0x9, seq=8)
    assert aud.ok
    aud.on_transport_dispatch(node=1, peer=0, flow=0x9, seq=7)
    assert [v.kind for v in aud.violations] == ["double-dispatch"]
    # A restore prunes seqs past the rewound edge: re-dispatch is legal.
    aud2 = InvariantAuditor()

    class _N:
        node_id = 1

    aud2.on_transport_dispatch(node=1, peer=0, flow=0x9, seq=7)
    aud2.note_restore(_N(), {}, {(0, 0x9): 5})
    aud2.on_transport_dispatch(node=1, peer=0, flow=0x9, seq=7)
    assert aud2.ok


# ---------------------------------------------------------------------- give-up counters


def test_put_window_eviction_is_counted():
    cl = _cluster(put_window=2)
    api0 = RvmaApi(cl.node(0))

    def producer():
        yield 100.0
        ops = []
        for _ in range(5):  # window keeps 2: three ops must be evicted
            op = yield from api0.put(1, 0x9, data=b"x" * 16)
            ops.append(op)
        yield ops[-1].local_done

    def consumer():
        win = yield from RvmaApi(cl.node(1)).init_window(0x9, epoch_threshold=80)
        yield from RvmaApi(cl.node(1)).post_buffer(win, size=80)
        yield 1.0

    run_gens(cl.sim, producer(), consumer())
    assert cl.node(0).nic.stat("put_window_evictions").value == 3


def test_put_retry_budget_exhaustion_counts_as_giveup():
    # No window ever initialised: every put NACKs NO_MAILBOX and the
    # initiator retries until its budget dies -> one put_giveup.
    cl = _cluster(put_retries=2, put_retry_timeout=200.0)
    api0 = RvmaApi(cl.node(0))

    def producer():
        yield 100.0
        op = yield from api0.put(1, 0x9, data=b"y" * 16)
        yield op.local_done

    run_gens(cl.sim, producer())
    nic0 = cl.node(0).nic
    assert nic0.stat("put_retries").value == 2
    assert nic0.stat("put_giveups").value == 1
    assert nic0.stat("puts_lost").value == 1


# ---------------------------------------------------------------------- detector / epochs


def test_detector_reinstate_clears_suspicion():
    cl = _cluster(reliability=True)
    det = cl.node(0).nic.detector
    det.reinstate(1)  # not suspected: no-op
    assert cl.node(0).nic.stat("peers_reinstated").value == 0
    det.force_suspect(1, "test")
    assert det.is_suspected(1)
    det.reinstate(1)
    assert not det.is_suspected(1)
    assert cl.node(0).nic.stat("peers_reinstated").value == 1


def test_transport_shutdown_silences_pending_state():
    cl = _cluster(reliability=True)
    api0 = RvmaApi(cl.node(0))
    cl.node(1).nic.fail()  # never acks

    def producer():
        yield 100.0
        op = yield from api0.put(1, 0x9, data=b"z" * 16)
        yield op.local_done

    tr = cl.node(0).nic.transport

    def killer():
        yield 6_000.0  # after the first send, before the budget dies
        assert tr.unacked(1) == 1
        tr.shutdown()

    run_gens(cl.sim, producer(), killer())
    assert tr.unacked() == 0
    assert tr.journal is None
    assert cl.sim.stats.counter("reliability.rel_gave_up").value == 0


def test_negotiate_consistent_epoch_is_min_of_views():
    assert negotiate_consistent_epoch([4, 7, 5]) == 4
    assert negotiate_consistent_epoch([3]) == 3
    assert negotiate_consistent_epoch([2, -1]) == -1
    with pytest.raises(ValueError):
        negotiate_consistent_epoch([])
