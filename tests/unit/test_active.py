"""Unit: active mailboxes — NIC-side compute-on-arrival (PR 9 tentpole).

Conformance-first: every handler-visible behaviour is checked against
its pure host-dispatch oracle — the word update against
:func:`apply_word_op`, the filter against
:meth:`PredicateFilter.matches`, and the KV scanner's served replies
against a host model replaying the same byte stream.  Plus the
straddle-resumable scanner state machine, attach validation, the
pending-write consistency protocol, and the journal-replay branch.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core.api import RvmaApi
from repro.faults import FaultInjector
from repro.nic.active import (
    ActiveBinding,
    ActiveCostConfig,
    ActiveEffect,
    ActiveRegistry,
    AtomicWordHandler,
    KvServeHandler,
    PredicateFilter,
    apply_word_op,
)
from repro.nic.lut import EpochType
from repro.nic.rvma import RvmaNicConfig
from repro.observability import MetricsRegistry
from repro.recovery import InvariantAuditor, RecoveryConfig, RecoveryManager
from repro.reliability import ReliabilityConfig
from repro.services.wire import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SERVED,
    STATUS_HANDLER_FLAG,
    STATUS_OK,
    RequestDecoder,
    encode_reply,
    encode_request,
)
from repro.core.status import RvmaApiError

from tests.helpers import run_gens

# ------------------------------------------------------------------ pure oracles


def test_apply_word_op_oracle():
    add = AtomicWordHandler(op="add", operand=3)
    assert apply_word_op(10, add, 999) == (13, True)
    add_bytes = AtomicWordHandler(op="add_bytes")
    assert apply_word_op(10, add_bytes, 256) == (266, True)
    cas = AtomicWordHandler(op="cas", expect=10, update=77)
    assert apply_word_op(10, cas, 0) == (77, True)
    assert apply_word_op(11, cas, 0) == (11, False)  # expectation failed
    with pytest.raises(ValueError):
        AtomicWordHandler(op="xor")


def test_predicate_filter_oracle():
    flt = PredicateFilter(prefix=b"OK")
    assert flt.matches(b"OK-payload") and not flt.matches(b"no")
    inv = PredicateFilter(prefix=b"OK", invert=True)
    assert not inv.matches(b"OK-payload") and inv.matches(b"no")
    # Empty prefix matches everything (invert drops everything).
    assert PredicateFilter().matches(b"") is True


# ------------------------------------------------------------------ word handlers


def _word_window(api, mailbox, threshold, handler, etype=EpochType.EPOCH_BYTES, bufsize=None):
    win = yield from api.init_window(mailbox, epoch_threshold=threshold, epoch_type=etype)
    for _ in range(4):
        yield from api.post_buffer(win, size=bufsize or threshold)
    binding = yield from api.attach_handler(win, handler)
    return win, binding


def test_word_handler_matches_host_oracle(rvma_pair):
    """NIC word after N epochs == host folding apply_word_op N times."""
    cl = rvma_pair
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    handler = AtomicWordHandler(op="add_bytes", initial=5)
    lens = (64, 96, 32)

    def consumer():
        # One op per epoch, so the epoch length the handler sees is the
        # put size — that exercises add_bytes on unequal epochs.
        win, _ = yield from _word_window(
            api1, 0x9, 1, handler, etype=EpochType.EPOCH_OPS, bufsize=128
        )
        words = []
        for _ in lens:
            yield from api1.wait_completion(win)
            words.append((yield from api1.active_word(win)))
        return words

    def producer():
        yield 5_000.0
        for n in lens:
            op = yield from api0.put(1, 0x9, data=b"w" * n)
            yield op.local_done
            yield 3_000.0

    words, _ = run_gens(cl.sim, consumer(), producer())
    # Host oracle: same pure rule, folded over the same epoch lengths.
    oracle, expect = handler.initial, []
    for n in lens:
        oracle, applied = apply_word_op(oracle, handler, n)
        assert applied
        expect.append(oracle)
    assert words == expect == [69, 165, 197]
    reg = MetricsRegistry.collect(cl.sim)
    assert reg.counters["nic.rvma.active.word_ops"] == len(lens)
    assert reg.counters["nic.rvma.active.attached"] == 1
    assert reg.counters["nic.rvma.active.invocations"] == len(lens)
    assert reg.undocumented() == []


def test_cas_word_fires_once_then_fails(rvma_pair):
    cl = rvma_pair
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    handler = AtomicWordHandler(op="cas", expect=0, update=7)

    def consumer():
        win, _ = yield from _word_window(api1, 0xC, 32, handler)
        for _ in range(2):
            yield from api1.wait_completion(win)
        return (yield from api1.active_word(win))

    def producer():
        yield 5_000.0
        for _ in range(2):
            op = yield from api0.put(1, 0xC, data=b"c" * 32)
            yield op.local_done
            yield 2_000.0

    word, _ = run_gens(cl.sim, consumer(), producer())
    assert word == 7  # first epoch swapped; second CAS saw 7 != 0
    assert cl.node(1).nic.stat("active.cas_failures").value == 1


def test_attach_validation(rvma_pair):
    cl = rvma_pair
    api1 = RvmaApi(cl.node(1))
    outcome = {}

    def driver():
        # Unknown mailbox refuses.
        win = yield from api1.init_window(0xE, epoch_threshold=64)
        fake = type(win)(node=win.node, virtual_addr=0xDEAD, key=0,
                         epoch_threshold=64, epoch_type=win.epoch_type,
                         mode=win.mode)
        try:
            yield from api1.attach_handler(fake, AtomicWordHandler())
        except RvmaApiError:
            outcome["unknown"] = True
        # One handler per kind per mailbox.
        yield from api1.attach_handler(win, AtomicWordHandler())
        try:
            yield from api1.attach_handler(win, AtomicWordHandler())
        except RvmaApiError:
            outcome["dup"] = True
        # KV handlers need a receiver-managed stream.
        try:
            yield from api1.attach_handler(win, KvServeHandler(hot_keys=(b"k",)))
        except RvmaApiError:
            outcome["steered_kv"] = True
        # A filter composes fine alongside the word handler.
        binding = yield from api1.attach_handler(win, PredicateFilter(prefix=b"x"))
        outcome["handlers"] = len(binding.handlers)

    run_gens(cl.sim, driver())
    assert outcome == {"unknown": True, "dup": True, "steered_kv": True, "handlers": 2}


# ------------------------------------------------------------------ filters


def test_filter_placement_matches_host_oracle(rvma_pair):
    """Placed payloads == host-side filter of the send stream."""
    cl = rvma_pair
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    flt = PredicateFilter(prefix=b"OK")
    slot = 32
    payloads = [
        (b"OK" + bytes([i]) * (slot - 2)) if i % 3 else (b"no" + bytes([i]) * (slot - 2))
        for i in range(6)
    ]
    passing = [p for p in payloads if flt.matches(p)]

    def consumer():
        win = yield from api1.init_window(0xF, epoch_threshold=len(passing) * slot)
        record = yield from api1.post_buffer(win, size=len(payloads) * slot)
        yield from api1.attach_handler(win, flt)
        yield from api1.wait_completion(win)
        return record.buffer.contents()

    def producer():
        yield 5_000.0
        for i, data in enumerate(payloads):
            op = yield from api0.put(1, 0xF, data=data, offset=i * slot)
            yield op.local_done
            yield 1_500.0

    contents, _ = run_gens(cl.sim, consumer(), producer())
    for i, data in enumerate(payloads):
        expect = data if flt.matches(data) else b"\x00" * slot
        assert contents[i * slot : (i + 1) * slot] == expect, f"slot {i}"
    nic1 = cl.node(1).nic
    assert nic1.stat("active.filter_passed").value == len(passing)
    assert nic1.stat("active.filtered_puts").value == len(payloads) - len(passing)
    reg = MetricsRegistry.collect(cl.sim)
    assert reg.counters["nic.rvma.nacks_filtered"] == len(payloads) - len(passing)
    # A FILTERED NACK is terminal for the initiator (no blind retry).
    assert cl.node(0).nic.stat("put_retries").value == 0
    assert reg.undocumented() == []


# ------------------------------------------------------------------ KV scanner


class _Counter:
    def __init__(self):
        self.value = 0

    def add(self, n=1):
        self.value += n


class _StubBuf:
    """Duck-typed PostedBuffer.buffer: read/write over a bytearray."""

    def __init__(self, data: bytes):
        self.raw = bytearray(data)
        self.buffer = self

    def read(self, off, n):
        return bytes(self.raw[off : off + n])

    def write(self, off, data):
        self.raw[off : off + len(data)] = data


class _StubNic:
    """Just what _scan_and_serve touches: stats + reply injection."""

    def __init__(self):
        self.counters = {}
        self.injected = []

    def stat(self, name):
        return self.counters.setdefault(name, _Counter())

    def inject(self, dst, size, header, data=b"", mode=None, after=0.0):
        self.injected.append((dst, header.mailbox, bytes(data), after))


HOT = (b"hotkey",)
BASE = 0x4000


def _kv_binding(view=None):
    nic = _StubNic()
    reg = ActiveRegistry(nic, ActiveCostConfig())
    binding = ActiveBinding(
        mailbox=0x9, kv=KvServeHandler(hot_keys=HOT, reply_mailbox_base=BASE)
    )
    binding.kv_state.view.update(view or {})
    reg.bindings[0x9] = binding
    return nic, reg, binding


def _scan_chunks(reg, binding, chunks):
    served_offsets = []
    out_chunks = []
    for chunk in chunks:
        buf = _StubBuf(chunk)
        served = []
        reg._scan_and_serve(binding, buf, len(chunk), served, 0.0)
        served_offsets.append(tuple(served))
        out_chunks.append(bytes(buf.raw))
    return served_offsets, out_chunks


def _host_oracle(chunks, view):
    """Host-dispatch twin: decode the raw stream, serve hot GETs."""
    dec = RequestDecoder()
    replies = []
    for chunk in chunks:
        for req in dec.feed(chunk):
            if req.op == OP_GET and req.key in HOT and req.key in view:
                replies.append(
                    encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, req.req_id, view[req.key])
                )
    return replies


def test_scanner_serves_hot_get_byte_identical_to_oracle():
    view = {b"hotkey": b"the-value"}
    nic, reg, binding = _kv_binding(view)
    client_id = (3 << 8) | 1
    chunk = (
        encode_request(OP_GET, client_id, 11, b"hotkey")
        + encode_request(OP_GET, client_id, 12, b"coldkey")
        + encode_request(OP_GET, client_id, 13, b"hotkey")
    )
    served, out = _scan_chunks(reg, binding, [chunk])
    # Both hot GETs tombstoned in place, frame lengths untouched.
    assert len(served[0]) == 2
    dec = RequestDecoder()
    survivors = dec.feed(out[0])
    assert [(r.op, r.key) for r in survivors] == [(OP_GET, b"coldkey")]
    for off in served[0]:
        assert out[0][off] == OP_SERVED
    # Injected replies byte-identical to the host-dispatch oracle,
    # routed to (node 3, reply mailbox base + client_id).
    expect = _host_oracle([chunk], view)
    assert [d for (_dst, _mb, d, _t) in nic.injected] == expect
    assert all(dst == 3 and mb == BASE + client_id for (dst, mb, _d, _t) in nic.injected)
    assert nic.stat("active.served").value == 2
    assert nic.stat("active.passed_cold").value == 0  # coldkey is not hot


def test_scanner_pending_writes_gate_serving():
    """The consistency protocol: a scanned write parks its key until the
    host syncs; shed writes un-park without touching the view."""
    view = {b"hotkey": b"v0"}
    nic, reg, binding = _kv_binding(view)
    get = encode_request(OP_GET, 0x0101, 1, b"hotkey")
    put = encode_request(OP_PUT, 0x0101, 2, b"hotkey", b"v1")
    _scan_chunks(reg, binding, [get + put + get])
    # First GET served (clean); the one after the PUT passed to host.
    assert nic.stat("active.served").value == 1
    assert nic.stat("active.passed_dirty").value == 1
    # Host executes the write and syncs: serving resumes with new bytes.
    assert reg.kv_sync(0x9, b"hotkey", value=b"v1")
    _scan_chunks(reg, binding, [encode_request(OP_GET, 0x0101, 3, b"hotkey")])
    assert nic.injected[-1][2] == encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, 3, b"v1")
    # Shed path: pending decremented, view untouched, key not wedged.
    _scan_chunks(reg, binding, [encode_request(OP_DELETE, 0x0101, 4, b"hotkey")])
    assert reg.kv_sync(0x9, b"hotkey", executed=False)
    assert binding.kv_state.view[b"hotkey"] == b"v1"
    assert not binding.kv_state.pending
    # Floor at zero: an unpaired post-crash sync is absorbed silently.
    assert reg.kv_sync(0x9, b"hotkey", value=b"v2")
    assert binding.kv_state.view[b"hotkey"] == b"v2"


@pytest.mark.parametrize("cut", ["header", "key", "value"])
def test_scanner_straddling_frames_resume_and_never_serve(cut):
    """A frame split across epochs is classified in stream order but
    never served; the stream re-syncs exactly at the next frame."""
    view = {b"hotkey": b"val"}
    nic, reg, binding = _kv_binding(view)
    straddler = encode_request(OP_PUT, 0x0101, 1, b"hotkey", b"body-bytes")
    cuts = {"header": 5, "key": 17 + 3, "value": 17 + 6 + 4}
    k = cuts[cut]
    tail_get = encode_request(OP_GET, 0x0101, 2, b"hotkey")
    chunks = [straddler[:k], straddler[k:] + tail_get]
    _scan_chunks(reg, binding, chunks)
    # The straddling PUT was pending-counted exactly once, so the GET
    # behind it must pass to the host (dirty), not serve stale bytes.
    assert binding.kv_state.pending == {b"hotkey": 1}
    assert nic.stat("active.served").value == 0
    assert nic.stat("active.passed_dirty").value == 1
    assert not binding.kv_state.carry and binding.kv_state.skip == 0
    # After the sync the stream position is clean again.
    reg.kv_sync(0x9, b"hotkey", value=b"new")
    _scan_chunks(reg, binding, [encode_request(OP_GET, 0x0101, 3, b"hotkey")])
    assert nic.injected[-1][2] == encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, 3, b"new")


def test_scanner_conformance_random_streams():
    """Byte-for-byte oracle over randomized chunkings of a mixed stream."""
    import random

    rnd = random.Random(0xAC71)
    for trial in range(20):
        view = {b"hotkey": bytes(rnd.randrange(256) for _ in range(rnd.randrange(1, 40)))}
        nic, reg, binding = _kv_binding(view)
        frames = []
        for req_id in range(12):
            roll = rnd.random()
            if roll < 0.6:
                key = b"hotkey" if rnd.random() < 0.7 else b"cold%d" % req_id
                frames.append(encode_request(OP_GET, 0x0101, req_id, key))
            else:
                # Writes on cold keys only: the oracle below has no
                # pending model, and hot writes are covered above.
                frames.append(
                    encode_request(OP_PUT, 0x0101, req_id, b"cold%d" % req_id, b"x" * rnd.randrange(20))
                )
        stream = b"".join(frames)
        # Random chunk boundaries, including mid-frame cuts.
        chunks, pos = [], 0
        while pos < len(stream):
            n = min(rnd.randrange(5, 60), len(stream) - pos)
            chunks.append(stream[pos : pos + n])
            pos += n
        _scan_chunks(reg, binding, chunks)
        got = [d for (_dst, _mb, d, _t) in nic.injected]
        # Oracle counts only *whole-frame* hot GETs: straddlers are
        # passed to the host by design, so drop them from the oracle.
        starts, pos = [], 0
        for f in frames:
            starts.append(pos)
            pos += len(f)
        bounds = set()
        acc = 0
        for c in chunks:
            acc += len(c)
            bounds.add(acc)
        expect = []
        for f, s in zip(frames, starts):
            contained = not any(s < b < s + len(f) for b in bounds)
            if contained:
                for r in _host_oracle([f], view):
                    expect.append(r)
        assert got == expect, f"trial {trial}"


def test_replay_branch_reasserts_effects_without_reserving():
    """Journal-hit epochs re-apply word + tombstones and inject nothing."""

    class _Journal:
        def __init__(self, effect):
            self.effect = effect
            self.noted = []

        def active_effect(self, mailbox, epoch):
            return self.effect

        def note_active_effect(self, mailbox, epoch, effect):
            self.noted.append(effect)

    class _Spans:
        active = False

        def wants(self, _c):
            return False

    get = encode_request(OP_GET, 0x0101, 9, b"hotkey")
    nic, reg, binding = _kv_binding({b"hotkey": b"v"})
    nic.op_journal = _Journal(ActiveEffect(word=42, served=(0,)))
    nic.sim = type("S", (), {"spans": _Spans()})()
    binding.word_handler = AtomicWordHandler(op="add")

    class _Entry:
        mailbox = 0x9
        epoch = 0
        active = _StubBuf(get)

    _Entry.active.bytes_received = len(get)
    cost = reg.on_epoch_complete(_Entry)
    assert cost > 0
    assert binding.word == 42  # journaled value, not initial+1
    assert _Entry.active.raw[0] == OP_SERVED  # tombstone re-asserted
    assert nic.injected == []  # no duplicate reply
    assert nic.stat("active.replayed").value == 1
    assert nic.op_journal.noted == []  # replay never re-journals


# ------------------------------------------------------------------ crash-restart


def test_word_handler_survives_crash_restart():
    """End-to-end: attach journaled, crash destroys the binding, rejoin
    re-attaches cold and replayed epochs re-assert journaled words — the
    final word equals the fault-free oracle, auditor clean."""
    rel = ReliabilityConfig(retransmit_timeout=8_000.0, max_backoff=50_000.0, max_retries=10)
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow",
        nic_config=RvmaNicConfig(reliability=rel),
    )
    aud = InvariantAuditor().attach(cl)
    mgr = RecoveryManager(
        cl, RecoveryConfig(checkpoint_interval_ns=5_000.0, horizon_ns=400_000.0)
    ).start()
    inj = FaultInjector(cl)
    mgr.arm(inj)
    inj.crash_restart(1, 23_000.0, 60_000.0)
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    size, epochs = 512, 6
    handler = AtomicWordHandler(op="add_bytes")

    def producer():
        yield 5_000.0
        for step in range(epochs):
            op = yield from api0.put(1, 0x9, data=bytes([step]) * size)
            yield op.local_done
            yield 7_000.0

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=size)
        for _ in range(epochs):
            yield from api1.post_buffer(win, size=size)
        yield from api1.attach_handler(win, handler)
        for _ in range(epochs):
            yield from api1.wait_completion(win)
        return (yield from api1.active_word(win))

    _, word = run_gens(cl.sim, producer(), consumer())
    assert word == epochs * size  # the fault-free oracle value
    nic1 = cl.node(1).nic
    assert nic1.incarnation == 1
    assert nic1.stat("active.attached").value >= 2  # original + cold re-attach
    assert nic1.stat("active.replayed").value >= 1
    report = aud.report()
    assert report["ok"], report["violations"]
