"""Unit tests for routing policy and both fabric fidelities."""

import pytest

from repro.network import (
    FlowFabric,
    MTU,
    NetworkConfig,
    PacketFabric,
    RoutingMode,
    choose_path,
    make_topology,
)
from repro.sim import Simulator
from repro.units import gbps


# --- routing policy -----------------------------------------------------------


def test_static_always_first_candidate():
    cands = [[0, 1], [0, 2, 1], [0, 3, 1]]
    choice = choose_path(cands, RoutingMode.STATIC, lambda p: 0.0, lambda n: n - 1)
    assert choice.path == [0, 1] and choice.index == 0


def test_adaptive_prefers_low_load():
    cands = [[0, 1], [0, 2, 1]]
    loads = {(0, 1): 1000.0, (0, 2, 1): 10.0}
    choice = choose_path(
        cands, RoutingMode.ADAPTIVE, lambda p: loads[tuple(p)], lambda n: 0
    )
    assert choice.path == [0, 2, 1]


def test_adaptive_randomizes_among_near_equal():
    cands = [[0, 1], [0, 2, 1], [0, 3, 1]]
    picks = set()
    for k in range(3):
        choice = choose_path(
            cands, RoutingMode.ADAPTIVE, lambda p: 5.0, lambda n, k=k: k % n
        )
        picks.add(choice.index)
    assert len(picks) > 1


def test_empty_candidates_rejected():
    with pytest.raises(ValueError):
        choose_path([], RoutingMode.STATIC, lambda p: 0.0, lambda n: 0)


def test_routing_mode_ordered_property():
    assert RoutingMode.STATIC.ordered
    assert not RoutingMode.ADAPTIVE.ordered


# --- flow fabric -----------------------------------------------------------------


def _flow(n=4, **cfg):
    sim = Simulator()
    topo = make_topology("star", n)
    fab = FlowFabric(sim, topo, NetworkConfig(**cfg))
    return sim, fab


def test_flow_delivery_time_matches_model():
    sim, fab = _flow(link_bw=gbps(80), injection_latency=10.0, switch_latency=100.0)
    got = []
    fab.attach(1, got.append)
    msg = fab.send(0, 1, 10000)
    sim.run()
    d = got[0]
    ser = msg.wire_size / gbps(80)
    # inj(10+100 switch) + eject(10) then serialization once (cut-through).
    assert d.info.arrival_time == pytest.approx(120.0 + ser)


def test_flow_injection_serializes_back_to_back_sends():
    sim, fab = _flow(link_bw=gbps(8))  # 1 B/ns
    got = []
    fab.attach(1, got.append)
    fab.send(0, 1, 1000)
    fab.send(0, 1, 1000)
    sim.run()
    t1, t2 = [d.info.arrival_time for d in got]
    wire = 1000 + 30  # + header
    # The second message queues behind the first's serialization (plus
    # at most the re-charged channel latency of the queueing point).
    assert wire <= t2 - t1 <= wire + 150.0


def test_flow_distinct_sources_do_not_serialize_on_injection():
    sim, fab = _flow(link_bw=gbps(8))
    got = []
    fab.attach(3, got.append)
    fab.send(0, 3, 1000)
    fab.send(1, 3, 1000)
    sim.run()
    t1, t2 = sorted(d.info.arrival_time for d in got)
    # They collide only on node 3's ejection channel, so the gap is one
    # serialization (plus at most the re-charged ejection latency) —
    # NOT two serializations as same-source sends would pay.
    ser = (1000 + 30) / gbps(8)
    assert ser <= t2 - t1 <= ser + 50.0


def test_flow_requires_attached_handler():
    sim, fab = _flow()
    fab.send(0, 1, 100)
    with pytest.raises(RuntimeError):
        sim.run()


def test_flow_duplicate_attach_rejected():
    _sim, fab = _flow()
    fab.attach(0, lambda d: None)
    with pytest.raises(ValueError):
        fab.attach(0, lambda d: None)


def test_flow_static_ordering_preserved_per_pair():
    sim = Simulator()
    topo = make_topology("dragonfly", 16)
    fab = FlowFabric(sim, topo, NetworkConfig(routing=RoutingMode.STATIC))
    got = []
    fab.attach(9, lambda d: got.append(d.message.msg_id))
    sent = [fab.send(0, 9, 5000).msg_id for _ in range(10)]
    sim.run()
    assert got == sent


def test_flow_injection_busy_until_advances():
    sim, fab = _flow(link_bw=gbps(8))
    fab.attach(1, lambda d: None)
    assert fab.injection_busy_until(0) == 0.0
    fab.send(0, 1, 1000)
    assert fab.injection_busy_until(0) > 0.0


# --- packet fabric ---------------------------------------------------------------


def test_packet_fragments_and_delivers_all():
    sim = Simulator()
    fab = PacketFabric(sim, make_topology("star", 2))
    got = []
    fab.attach(1, got.append)
    size = int(MTU * 2.5)
    fab.send(0, 1, size, data=bytes(size))
    sim.run()
    assert len(got) == 3
    assert sum(d.packet.size for d in got) == size


def test_packet_static_delivers_in_order():
    sim = Simulator()
    fab = PacketFabric(
        sim, make_topology("fattree", 16), NetworkConfig(routing=RoutingMode.STATIC)
    )
    got = []
    fab.attach(15, lambda d: got.append(d.packet.seq))
    fab.send(0, 15, MTU * 6)
    sim.run()
    assert got == sorted(got)


def test_packet_adaptive_can_reorder():
    sim = Simulator()
    fab = PacketFabric(
        sim, make_topology("fattree", 16), NetworkConfig(routing=RoutingMode.ADAPTIVE)
    )
    got = []
    fab.attach(15, lambda d: got.append(d.packet.seq))
    for _ in range(3):
        fab.send(0, 15, MTU * 8)
    sim.run()
    assert len(got) == 24
    # With per-packet path choice across distinct up-paths, arrival
    # order differs from send order.
    assert got != sorted(got)


def test_packet_switch_forward_counts():
    sim = Simulator()
    fab = PacketFabric(sim, make_topology("star", 2))
    fab.attach(1, lambda d: None)
    fab.send(0, 1, 100)
    sim.run()
    assert fab.switches[0].packets_forwarded == 1
    assert fab.packets_delivered == 1


def test_fault_filter_drops_deliveries():
    sim, fab = _flow()
    got = []
    fab.attach(1, got.append)
    fab.fault_filter = lambda d: True
    fab.send(0, 1, 100)
    sim.run()
    assert got == [] and fab.deliveries_dropped == 1


def test_network_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(link_bw=0.0)
    with pytest.raises(ValueError):
        NetworkConfig(crossbar_factor=0.5)
    cfg = NetworkConfig()
    assert cfg.crossbar_bw == pytest.approx(1.5 * cfg.link_bw)
    assert cfg.with_(link_bw=gbps(400)).link_bw == gbps(400)


def test_channel_labels_and_hottest_channels():
    sim = Simulator()
    topo = make_topology("fattree", 16)
    fab = FlowFabric(sim, topo, NetworkConfig(routing=RoutingMode.STATIC))
    fab.attach(15, lambda d: None)
    for _ in range(3):
        fab.send(0, 15, 10000)
    sim.run()
    hottest = fab.hottest_channels(5)
    assert hottest[0][1] >= hottest[-1][1] > 0
    labels = [name for name, _ in hottest]
    assert any(l.startswith("inject[node0]") for l in labels)
    assert any(l.startswith("eject[node15]") for l in labels)
    assert any(l.startswith("link[sw") for l in labels)
