"""Scheduler conformance: the optimized engine vs the reference heap.

Identical programs run on three implementations — the fast engine, the
plain (pool/bucket-free) engine, and :class:`tests.helpers.ReferenceSimulator`
(the pre-optimization engine kept verbatim as an oracle) — and must
produce identical execution logs, timestamps, tie-breaking, counters
and error behaviour.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError

from ..helpers import ReferenceSimulator

SEED = 0xFACADE


def _implementations():
    return [
        ("fast", lambda: Simulator(seed=SEED, fast=True)),
        ("plain", lambda: Simulator(seed=SEED, fast=False)),
        ("reference", lambda: ReferenceSimulator(seed=SEED)),
    ]


def _conform(program, **run_kwargs):
    """Run *program(sim, log)* on all implementations; logs must agree."""
    outcomes = {}
    for name, factory in _implementations():
        sim = factory()
        log: list = []
        program(sim, log)
        end = sim.run(**run_kwargs)
        outcomes[name] = (log, end, sim.now, sim.events_executed, sim.pending_events)
    ref = outcomes.pop("reference")
    for name, got in outcomes.items():
        assert got == ref, f"{name} diverged from reference"
    return ref


def test_equal_time_ties_run_in_priority_then_insertion_order():
    def program(sim, log):
        sim.schedule(5.0, log.append, "n1")
        sim.schedule(5.0, log.append, "high", priority=-10)
        sim.schedule(5.0, log.append, "n2")
        sim.schedule(5.0, log.append, "low", priority=10)
        sim.schedule(2.0, log.append, "early")

    (log, *_rest) = _conform(program)
    assert log == ["early", "high", "n1", "n2", "low"]


def test_kwargs_are_delivered():
    def program(sim, log):
        sim.schedule(1.0, lambda **kw: log.append(kw), a=1, b="x")

    (log, *_rest) = _conform(program)
    assert log == [{"a": 1, "b": "x"}]


def test_cancel_before_due_time_suppresses_execution():
    def program(sim, log):
        ev = sim.schedule(3.0, log.append, "dead")
        sim.schedule(1.0, log.append, "live")
        ev.cancel()

    (log, _end, _now, executed, pending) = _conform(program)
    assert log == ["live"]
    assert executed == 1
    assert pending == 0


def test_cancel_from_inside_an_earlier_event():
    def program(sim, log):
        ev = sim.schedule(5.0, log.append, "victim")
        sim.schedule(2.0, lambda: (log.append("killer"), ev.cancel()))

    (log, *_rest) = _conform(program)
    assert log == ["killer"]


def test_cancel_after_execution_is_a_noop():
    def program(sim, log):
        holder = {}

        def fire():
            log.append("fired")

        holder["ev"] = sim.schedule(1.0, fire)
        sim.schedule(2.0, lambda: holder["ev"].cancel())
        sim.schedule(3.0, log.append, "late")

    (log, _end, _now, executed, pending) = _conform(program)
    assert log == ["fired", "late"]
    assert pending == 0


def test_double_cancel_counts_once():
    def program(sim, log):
        ev = sim.schedule(9.0, log.append, "never")
        ev.cancel()
        ev.cancel()
        sim.schedule(1.0, log.append, "ok")

    (log, _end, _now, _executed, pending) = _conform(program)
    assert log == ["ok"]
    assert pending == 0


def test_until_window_advances_now_to_exactly_until():
    def program(sim, log):
        for t in (1.0, 4.0, 9.0):
            sim.schedule(t, log.append, t)

    (log, end, now, executed, pending) = _conform(program, until=5.0)
    assert log == [1.0, 4.0]
    assert end == now == 5.0
    assert executed == 2
    assert pending == 1


def test_max_events_stops_after_n():
    def program(sim, log):
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, log.append, t)

    (log, _end, now, executed, pending) = _conform(program, max_events=2)
    assert log == [1.0, 2.0]
    assert now == 2.0
    assert executed == 2
    assert pending == 2


def test_reentrant_run_raises():
    for name, factory in _implementations():
        sim = factory()
        errors: list = []

        def reenter():
            try:
                sim.run()
            except SimulationError:
                errors.append(name)

        sim.schedule(1.0, reenter)
        sim.run()
        assert errors == [name]


def test_negative_delay_raises():
    for _name, factory in _implementations():
        sim = factory()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_raises():
    for _name, factory in _implementations():
        sim = factory()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_from_callbacks_interleave_identically():
    def program(sim, log):
        def parent(tag, depth):
            log.append((sim.now, tag))
            if depth:
                sim.schedule(0.0, parent, f"{tag}.z", depth - 1)
                sim.schedule(1.0, parent, f"{tag}.o", depth - 1)

        sim.schedule(0.0, parent, "r", 3)

    _conform(program)


def test_seeded_random_program_conforms():
    """A randomized schedule/cancel storm stays event-for-event equal."""

    def program(sim, log):
        rng = sim.rng.stream("conform")
        pending: list = []

        def fire(tag):
            log.append((sim.now, tag))
            k = int(rng.integers(0, 4))
            d = float(int(rng.integers(0, 3)))
            if k == 0 and len(log) < 300:
                sim.schedule(d, fire, f"{tag}x")
            elif k == 1 and len(log) < 300:
                pending.append(sim.schedule(d + 1.0, fire, f"{tag}y"))
            elif k == 2 and pending:
                pending.pop().cancel()

        for i in range(20):
            sim.schedule(float(i % 5), fire, f"s{i}")

    _conform(program)


# --- fast-path APIs: post/post_batch vs their schedule() equivalents -------


def test_post_matches_schedule_semantics():
    """post() on both engine modes orders exactly like schedule()."""

    def with_post(fast):
        sim = Simulator(seed=SEED, fast=fast)
        log: list = []
        sim.post(2.0, log.append, "a")
        sim.post(1.0, log.append, "b")
        sim.post(2.0, log.append, "c")
        sim.run()
        return log, sim.now, sim.events_executed, sim.pending_events

    ref = ReferenceSimulator(seed=SEED)
    log: list = []
    ref.schedule(2.0, log.append, "a")
    ref.schedule(1.0, log.append, "b")
    ref.schedule(2.0, log.append, "c")
    ref.run()
    expected = (log, ref.now, ref.events_executed, ref.pending_events)
    assert with_post(True) == expected
    assert with_post(False) == expected


def test_post_batch_matches_individual_schedules():
    def with_batches(fast):
        sim = Simulator(seed=SEED, fast=fast)
        log: list = []
        sim.post_batch(3.0, [(log.append, ("b0",)), (log.append, ("b1",)), (log.append, ("b2",))])
        sim.post(3.0, log.append, "single")  # later seq: runs after the batch
        sim.post(1.0, log.append, "early")
        sim.run()
        return log, sim.now, sim.events_executed, sim.pending_events

    ref = ReferenceSimulator(seed=SEED)
    log: list = []
    for tag in ("b0", "b1", "b2"):
        ref.schedule(3.0, log.append, tag)
    ref.schedule(3.0, log.append, "single")
    ref.schedule(1.0, log.append, "early")
    ref.run()
    expected = (log, ref.now, ref.events_executed, ref.pending_events)
    assert with_batches(True) == expected
    assert with_batches(False) == expected


def test_bucket_members_yield_to_interleaved_delay_zero_posts():
    """A batch member that posts a delay-0 event at the same timestamp
    must NOT let later batch members jump ahead of it (seq order)."""

    def scenario(fast):
        sim = Simulator(seed=SEED, fast=fast)
        log: list = []

        def first():
            log.append("first")
            sim.post(0.0, log.append, "injected")

        sim.post_batch(5.0, [(first, ()), (log.append, ("second",)), (log.append, ("third",))])
        sim.run()
        return log

    assert scenario(True) == scenario(False) == ["first", "second", "third", "injected"]


def test_schedule_batch_cancellation_per_member():
    def scenario(fast):
        sim = Simulator(seed=SEED, fast=fast)
        log: list = []
        evs = sim.schedule_batch(4.0, [(log.append, (i,)) for i in range(5)])
        evs[1].cancel()
        evs[3].cancel()
        sim.run()
        return log, sim.pending_events

    assert scenario(True) == scenario(False) == ([0, 2, 4], 0)
