"""Unit tests for the trace codec: round-trip identity, strict decode.

The trace file is an interchange format — CI jobs, the bench cell, the
fuzzer's ``trace`` workload kind and the committed exemplars all decode
it — so the codec must be byte-stable (same rows => same file => same
trace_id) and *strict* (any malformed document is a TraceError, never a
silently-coerced trace).
"""

from __future__ import annotations

import json

import pytest

from repro.workloads import (
    EXEMPLAR_NAMES,
    EXEMPLARS,
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    Trace,
    TraceError,
    TraceRow,
    load_exemplar,
)


def _rows():
    return [
        TraceRow(timestamp_ns=0, tenant=0, client=7, op="put", key="k0", value_size=16),
        TraceRow(timestamp_ns=100.5, tenant=0, client=7, op="get", key="k0", value_size=0),
        TraceRow(timestamp_ns=100.5, tenant=1, client=9, op="scan", key="k", value_size=0),
        TraceRow(timestamp_ns=230, tenant=1, client=9, op="delete", key="k0", value_size=0),
    ]


def _trace():
    return Trace.from_rows(_rows(), provenance={"seed": 3, "source": "unit"})


# ------------------------------------------------------------------ round-trip


def test_roundtrip_byte_identity():
    trace = _trace()
    text = trace.to_jsonl()
    back = Trace.decode(text)
    assert back.to_jsonl() == text
    assert back.rows == trace.rows
    assert back.trace_id == trace.trace_id


def test_trace_id_stable_under_reencode():
    trace = _trace()
    ids = {Trace.decode(trace.to_jsonl()).trace_id for _ in range(3)}
    assert ids == {trace.trace_id}


def test_trace_id_ignores_provenance():
    # Identity is the row stream: re-recording the same load with
    # different provenance (seed notes, transform history) must not
    # mint a new trace_id.
    a = Trace.from_rows(_rows(), provenance={"seed": 1})
    b = Trace.from_rows(_rows(), provenance={"seed": 999, "note": "x"})
    assert a.trace_id == b.trace_id


def test_trace_id_tracks_rows():
    base = _trace()
    bumped = Trace.from_rows(
        _rows()[:-1], provenance=dict(base.provenance)
    )
    assert bumped.trace_id != base.trace_id


def test_save_load_roundtrip(tmp_path):
    trace = _trace()
    path = tmp_path / "t.jsonl"
    trace.save(path)
    back = Trace.load(str(path))
    assert back.to_jsonl() == trace.to_jsonl()


# ------------------------------------------------------------------ strictness


def test_rejects_bad_op():
    with pytest.raises(TraceError):
        TraceRow(timestamp_ns=0, tenant=0, client=1, op="swap", key="k", value_size=0).validate()


def test_rejects_negative_timestamp():
    with pytest.raises(TraceError):
        TraceRow(timestamp_ns=-1, tenant=0, client=1, op="get", key="k", value_size=0).validate()


def test_rejects_value_size_on_non_put():
    with pytest.raises(TraceError):
        TraceRow(timestamp_ns=0, tenant=0, client=1, op="get", key="k", value_size=4).validate()


def test_rejects_out_of_order_rows():
    rows = [
        TraceRow(timestamp_ns=50, tenant=0, client=1, op="get", key="a", value_size=0),
        TraceRow(timestamp_ns=10, tenant=0, client=1, op="get", key="b", value_size=0),
    ]
    with pytest.raises(TraceError):
        Trace.from_rows(rows, provenance={})


def test_rejects_inconsistent_client_tenant():
    rows = [
        TraceRow(timestamp_ns=0, tenant=0, client=1, op="get", key="a", value_size=0),
        TraceRow(timestamp_ns=10, tenant=2, client=1, op="get", key="a", value_size=0),
    ]
    with pytest.raises(TraceError):
        Trace.from_rows(rows, provenance={})


def test_rejects_truncated_file():
    text = _trace().to_jsonl()
    lines = text.splitlines()
    truncated = "\n".join(lines[:-1]) + "\n"
    with pytest.raises(TraceError):
        Trace.decode(truncated)


def test_rejects_wrong_schema_version():
    text = _trace().to_jsonl()
    header, rest = text.split("\n", 1)
    doc = json.loads(header)
    assert doc["schema"] == TRACE_SCHEMA_VERSION
    doc["schema"] = TRACE_SCHEMA_VERSION + 1
    with pytest.raises(TraceError):
        Trace.decode(json.dumps(doc, sort_keys=True) + "\n" + rest)


def test_rejects_wrong_kind():
    text = _trace().to_jsonl()
    header, rest = text.split("\n", 1)
    doc = json.loads(header)
    assert doc["kind"] == TRACE_KIND
    doc["kind"] = "something-else"
    with pytest.raises(TraceError):
        Trace.decode(json.dumps(doc, sort_keys=True) + "\n" + rest)


def test_rejects_tampered_trace_id():
    text = _trace().to_jsonl()
    header, rest = text.split("\n", 1)
    doc = json.loads(header)
    doc["trace_id"] = "0" * len(doc["trace_id"])
    with pytest.raises(TraceError):
        Trace.decode(json.dumps(doc, sort_keys=True) + "\n" + rest)


def test_rejects_malformed_row_shape():
    text = _trace().to_jsonl()
    lines = text.splitlines()
    lines[1] = json.dumps([0, 0, 1, "get"])  # missing fields
    with pytest.raises(TraceError):
        Trace.decode("\n".join(lines) + "\n")


# ------------------------------------------------------------------ exemplars


def test_committed_exemplars_match_registry():
    # The committed corpus/traces files must match their pinned
    # identities exactly — a regenerated or hand-edited trace fails
    # here instead of silently changing every downstream comparison.
    for name in EXEMPLAR_NAMES:
        info = EXEMPLARS[name]
        trace = load_exemplar(name)
        assert trace.trace_id == info.trace_id
        assert trace.n_ops == info.rows
        assert len(trace.clients()) == info.clients
        assert trace.tenants() == info.tenants
