"""Unit + integration tests for NID/PID process addressing (§III-C)."""

import pytest

from repro.cluster import Cluster
from repro.core import RvmaAddress, RvmaApi, resolve_destination
from repro.core.addressing import PID_SHIFT

from tests.helpers import run_gens


def test_address_validation():
    RvmaAddress(0, 0)
    RvmaAddress(5, 0xFFFF)
    with pytest.raises(ValueError):
        RvmaAddress(-1)
    with pytest.raises(ValueError):
        RvmaAddress(0, 0x10000)


def test_qualify_separates_pid_slices():
    a1 = RvmaAddress(3, 1).qualify(0xBEEF)
    a2 = RvmaAddress(3, 2).qualify(0xBEEF)
    assert a1 != a2
    assert a1 & ((1 << PID_SHIFT) - 1) == 0xBEEF
    assert a1 >> PID_SHIFT == 1


def test_resolve_destination_forms():
    assert resolve_destination(7, 0xAB) == (7, 0xAB)
    nid, mb = resolve_destination(RvmaAddress(7, 3), 0xAB)
    assert nid == 7 and mb == (3 << PID_SHIFT) | 0xAB


def test_colocated_processes_reuse_mailbox_numbers():
    """Two endpoints on one node, same application mailbox number,
    different PIDs: traffic lands with the right process."""
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="packet")
    sender = RvmaApi(cl.node(0))
    proc_a = RvmaApi(cl.node(1), pid=1)
    proc_b = RvmaApi(cl.node(1), pid=2)
    MAILBOX = 0x77  # both processes use the same number

    def make_receiver(api):
        def receiver():
            win = yield from api.init_window(MAILBOX, epoch_threshold=8)
            yield from api.post_buffer(win, size=8)
            info = yield from api.wait_completion(win)
            return info.read_data()

        return receiver

    def send():
        yield 2000.0
        op = yield from sender.put(RvmaAddress(1, 1), MAILBOX, data=b"to-procA")
        yield op.local_done
        op = yield from sender.put(RvmaAddress(1, 2), MAILBOX, data=b"to-procB")
        yield op.local_done

    got_a, got_b, _ = run_gens(
        cl.sim, make_receiver(proc_a)(), make_receiver(proc_b)(), send()
    )
    assert got_a == b"to-procA"
    assert got_b == b"to-procB"


def test_pid_zero_keeps_legacy_mailbox_space():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    api = RvmaApi(cl.node(1))  # pid 0
    big_mailbox = (1 << 60) | 5

    def receiver():
        win = yield from api.init_window(big_mailbox, epoch_threshold=8)
        return win.virtual_addr

    from tests.helpers import run_gen

    assert run_gen(cl.sim, receiver()) == big_mailbox


def test_get_honours_process_address():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="packet")
    reader = RvmaApi(cl.node(0))
    proc = RvmaApi(cl.node(1), pid=4)

    def receiver():
        win = yield from proc.init_window(0x10, epoch_threshold=32)
        rec = yield from proc.post_buffer(win, size=32)
        rec.buffer.write(0, b"P" * 32)

    def getter():
        yield 3000.0
        op = yield from reader.get(RvmaAddress(1, 4), 0x10, length=32)
        ok = yield op.done
        return ok

    _, ok = run_gens(cl.sim, receiver(), getter())
    assert ok is True
