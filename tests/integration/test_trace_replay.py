"""Integration: trace replay as an A/B instrument over identical load.

The differential story the tentpole promises: replaying one committed
exemplar under QoS on/off and active-mailboxes on/off offers *exactly*
the same load to every cell (same rows, zero drops), per-key
linearizability holds in every cell, and the documented contrasts —
QoS isolates the victim tenant, the NIC serve path cuts host
dispatches and hot-GET latency — emerge from the toggles alone.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.trace_replay import (
    build_exemplar,
    compare_trace,
    record_trace,
    replay_trace,
    trace_main,
)
from repro.scenarios.generator import generate
from repro.scenarios.runner import run_scenario
from repro.services import WorkloadConfig
from repro.workloads import EXEMPLAR_NAMES, Trace, load_exemplar


# ------------------------------------------------------------------ exemplars


def test_exemplars_replay_clean():
    for name in EXEMPLAR_NAMES:
        cell = replay_trace(load_exemplar(name), seed=1)
        assert cell.invariants_ok, (name, cell.error, cell.safety_failures)
        assert cell.stats.ops_dropped == 0


def test_exemplar_recipes_reproduce_committed_bytes():
    # `trace record --exemplar NAME` must regenerate the committed file
    # byte for byte — the recipes and the corpus cannot drift apart.
    for name in EXEMPLAR_NAMES:
        assert build_exemplar(name).to_jsonl() == load_exemplar(name).to_jsonl()


def test_record_roundtrip_replays_identically(tmp_path):
    trace, stats = record_trace(
        seed=5,
        workload=WorkloadConfig(
            n_ops=60, n_keys=24, mode="open", mean_interarrival_ns=2500.0,
            rng_stream="kv-trace-int",
        ),
    )
    assert stats.ops_issued >= trace.n_ops
    path = tmp_path / "t.jsonl"
    trace.save(path)
    loaded = Trace.load(str(path))
    a = replay_trace(trace, seed=2)
    b = replay_trace(loaded, seed=2)
    assert a.invariants_ok and b.invariants_ok
    assert a.outcome_digest == b.outcome_digest


# ----------------------------------------------------------------- differential


def test_flash_crowd_differential_contrasts():
    trace = load_exemplar("flash-crowd")
    out = compare_trace(trace, seed=1)
    # Identical offered load in every cell: every row offered, none
    # dropped, in all three cells.
    assert out.offered_identical
    # Per-key linearizability + liveness + integrity, per cell.
    assert out.base.invariants_ok, (out.base.error, out.base.safety_failures)
    assert out.qos_on.invariants_ok, (out.qos_on.error, out.qos_on.safety_failures)
    assert out.active_on.invariants_ok
    # QoS isolation: the aggressor is shed, the victim is not, and the
    # victim's tail improves relative to the FIFO base cell.
    assert out.qos_contrast_ok
    victim = out.victim
    assert out.qos_on.tenant_shed[victim] == 0
    assert sum(out.qos_on.tenant_shed[t] for t in out.aggressors) > 0
    assert out.qos_on.tenant_p99_ns[victim] < out.base.tenant_p99_ns[victim]
    # Active mailboxes: NIC serves hot GETs, saving host dispatches and
    # cutting p99 on the same offered load.
    assert out.active_contrast_ok
    assert out.active_on.served > 0
    assert out.dispatch_saving >= out.active_on.served
    assert out.active_on.p99_ns < out.base.p99_ns
    # The toggles change outcomes (sheds, NIC serves), never offered
    # rows — digests differ precisely because policy differs.
    assert out.base.outcome_digest != out.qos_on.outcome_digest


def test_steady_mix_toggles_keep_invariants():
    trace = load_exemplar("steady-mix")
    for qos in (False, True):
        for active in (False, True):
            cell = replay_trace(trace, seed=1, qos=qos, active=active)
            assert cell.invariants_ok, (qos, active, cell.error, cell.safety_failures)


# ------------------------------------------------------------- fuzzer workload


def test_trace_scenarios_generate_and_run():
    found = None
    for seed in range(1, 200):
        s = generate(seed)
        if s.workload_kind == "trace":
            found = s
            break
    assert found is not None, "no trace scenario in the first 200 seeds"
    assert found.workload["trace_ref"] in EXEMPLAR_NAMES
    out = run_scenario(found)
    assert not out.failed, out.fingerprint.describe()
    assert out.run_report is not None
    assert out.run_report.meta["workload"] == "trace"


# ------------------------------------------------------------------- CLI smoke


def test_cli_info_and_replay(capsys):
    rc = trace_main(["info", "steady-mix"])
    assert rc == 0
    assert "steady-mix" in capsys.readouterr().out or True
    rc = trace_main(["replay", "steady-mix", "--seed", "2", "--engine", "plain"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "invariants: ok" in out


def test_cli_record_transform_compare(tmp_path, capsys):
    raw = tmp_path / "raw.jsonl"
    rc = trace_main(["record", "--seed", "9", "--ops", "40", "--out", str(raw)])
    assert rc == 0
    shaped = tmp_path / "shaped.jsonl"
    rc = trace_main([
        "transform", str(raw), "--out", str(shaped),
        "--time-scale", "2.0", "--amplify", "2.0",
    ])
    assert rc == 0
    trace = Trace.load(str(shaped))
    assert trace.n_ops == Trace.load(str(raw)).n_ops
    assert trace.provenance["transforms"]
    report = tmp_path / "cmp.json"
    rc = trace_main([
        "compare", "flash-crowd", "--seed", "1", "--report-out", str(report),
    ])
    capsys.readouterr()
    assert rc == 0
    doc = json.loads(report.read_text())
    assert doc["meta"]["harness"] == "trace-compare"
