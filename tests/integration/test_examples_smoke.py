"""Smoke tests: every example script runs clean and prints its story.

Examples are user-facing documentation; a broken example is a bug.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr}"
    return result.stdout


def test_quickstart_example():
    out = _run("quickstart.py")
    assert "intact=True" in out
    assert "epoch complete" in out


def test_fault_tolerant_rewind_example():
    out = _run("fault_tolerant_rewind.py")
    assert "NODE FAILURE" in out
    assert "MPIX_Rewind" in out
    assert "data intact=True" in out
    assert "node 0 dead=True" in out
    # Act 1: every timestep byte-identical across the crash-restart.
    assert out.count("intact=True") >= 6
    assert "incarnation 1" in out and "replay holes: 0" in out
    # Act 2: the cluster-wide recovery line converged.
    assert "coordinated rewind" in out and "converged=True" in out
    assert "clean=True" in out


def test_sockets_streaming_example():
    out = _run("sockets_streaming.py")
    assert "reassembled byte-exact" in out
    assert "flushed tail" in out


def test_adaptive_routing_study_example():
    out = _run("adaptive_routing_study.py")
    assert "CORRUPTED" in out  # last-byte polling bug reproduced
    assert out.count("intact=True") == 2  # send/recv RDMA and RVMA both clean
    assert "faster than correct RDMA" in out


def test_incast_server_example():
    out = _run("incast_server.py", "--clients", "8", "--msgs", "2")
    assert "registered MRs" in out
    assert "receiver" in out


def test_sweep3d_scale_study_example():
    out = _run("sweep3d_scale_study.py", "--nodes", "16", "--rates", "100Gbps")
    assert "average speedup" in out
    assert "x" in out


def test_mpi_rma_stencil_example():
    out = _run("mpi_rma_stencil.py")
    assert "MPIX_Rewind" in out
    assert "fenced epochs + rollback" in out


def test_kv_service_example():
    out = _run("kv_service.py", "--ops", "128")
    assert "p50" in out and "p99" in out
    assert "completed 128/128 ops" in out
    assert "invariants ok=True" in out


def test_socket_echo_server_example():
    out = _run("socket_echo_server.py")
    assert out.count("accepted node") == 3
    assert "HELLO FROM NODE 2" in out
    assert "no per-client" in out


def test_cli_chaos_metrics_out_and_trace(tmp_path):
    """`--metrics-out` must write a valid JSON report plus a rendered
    markdown next to it, for one motif under chaos with tracing on."""
    report = tmp_path / "report.json"
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments.cli", "chaos",
            "--seed", "1", "--motifs", "allreduce",
            "--metrics-out", str(report), "--trace",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, f"cli chaos failed:\n{result.stderr}"
    assert "observability report" in result.stdout

    import json

    data = json.loads(report.read_text())
    assert {"nic", "transport", "fabric"} <= set(data["metrics"])
    assert data["metrics"]["nic"]["nic.rvma.bytes_placed"] > 0
    assert len(data["spans"]["categories"]) >= 3
    assert data["spans"]["hottest_by_sim_time"]

    md = (tmp_path / "report.json.md").read_text()
    assert md.startswith("#") and "transport" in md
