"""Integration: §IV-F hardware fault tolerance via multi-epoch rewind.

A timestep-style producer streams epochs to a consumer; the producer
dies mid-epoch.  The consumer's in-progress buffer is garbage, but
``MPIX_Rewind`` recovers the last *complete* epoch from the NIC's
retired-buffer ring — the paper's headline fault-tolerance feature.
"""

import pytest

from repro.cluster import Cluster
from repro.core import EpochJournal, RvmaApi, latest_consistent_epoch, mpix_rewind
from repro.faults import FaultInjector
from repro.network import NetworkConfig, RoutingMode

from tests.helpers import run_gens


def _epoch_payload(step: int, size: int) -> bytes:
    return bytes([(step * 31 + j) % 256 for j in range(size)])


def test_rewind_recovers_last_complete_timestep():
    size = 4096
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE),
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    inj = FaultInjector(cl)
    journal = EpochJournal()

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=size)
        for _ in range(4):
            yield from api1.post_buffer(win, size=size)
        # Consume the two epochs that complete before the failure.
        for step in (0, 1):
            info = yield from api1.wait_completion(win)
            assert info.read_data() == _epoch_payload(step, size)
            epoch = yield from api1.win_get_epoch(win)
            # `epoch` is the count of completed buffers; the data we
            # just consumed lives in completed epoch index `epoch - 1`.
            journal.commit(step + 1, epoch - 1)
        # Wait long enough that the partial third epoch would have
        # finished if the producer were alive.
        yield 200000.0
        # --- recovery -------------------------------------------------------
        completed = yield from latest_consistent_epoch(api1, win)
        target = journal.rollback_target(completed)
        rewound = yield from mpix_rewind(api1, win, 1)
        return completed, target, rewound

    def producer():
        yield 3000.0
        for step in range(2):
            op = yield from api0.put(1, 0x9, data=_epoch_payload(step, size))
            yield op.local_done
            yield 5000.0
        # Third epoch: send only the first half, then die mid-transfer.
        half = _epoch_payload(2, size)[: size // 2]
        op = yield from api0.put(1, 0x9, data=half, size=size // 2)
        yield op.local_done
        inj.fail_node_at(0, cl.sim.now + 1.0)

    (completed, target, rewound), _ = run_gens(cl.sim, consumer(), producer())
    # Hardware state: two epochs completed (0 and 1); epoch 2 dangling.
    assert completed == 1
    assert target == 2  # journal: step 2 was the last consistent commit
    # Rewind hands back epoch 1's buffer, byte-exact.
    assert rewound.epoch == 1
    assert rewound.data == _epoch_payload(1, size)
    assert inj.node_is_dead(0)


def test_rewind_depth_bounded_by_retained_epochs():
    size = 256
    from repro.nic.rvma import RvmaNicConfig

    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        nic_config=RvmaNicConfig(retain_epochs=2),
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def consumer():
        win = yield from api1.init_window(0xA, epoch_threshold=size)
        for _ in range(5):
            yield from api1.post_buffer(win, size=size)
        for _ in range(5):
            yield from api1.wait_completion(win)
        reachable = yield from mpix_rewind(api1, win, 2)
        too_deep = yield from mpix_rewind(api1, win, 3)
        return reachable, too_deep

    def producer():
        yield 3000.0
        for step in range(5):
            op = yield from api0.put(1, 0xA, data=_epoch_payload(step, size))
            yield op.local_done
            yield 3000.0

    (reachable, too_deep), _ = run_gens(cl.sim, consumer(), producer())
    assert reachable is not None and reachable.epoch == 3
    assert too_deep is None  # NIC only retained 2 epochs


def test_rewind_sees_local_overwrites_caveat():
    """The paper's caveat: if the application wrote over a retired
    buffer, rewind returns the modified bytes — recovery schemes must
    account for locally-dirtied buffers."""
    size = 128
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="packet")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def consumer():
        win = yield from api1.init_window(0xB, epoch_threshold=size)
        yield from api1.post_buffer(win, size=size)
        info = yield from api1.wait_completion(win)
        # Application scribbles on the retired buffer...
        info.record.buffer.write(0, b"DIRTY" + b"\x00" * (size - 5))
        rewound = yield from mpix_rewind(api1, win, 1)
        return rewound

    def producer():
        yield 3000.0
        op = yield from api0.put(1, 0xB, data=_epoch_payload(0, size))
        yield op.local_done

    rewound, _ = run_gens(cl.sim, consumer(), producer())
    assert rewound.data[:5] == b"DIRTY"  # modified data comes back
