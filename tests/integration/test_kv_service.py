"""Integration tests for the sharded KV service (ISSUE PR 5 tentpole).

End-to-end correctness over real RVMA mailboxes, backpressure through
the transport's flow_room hold path, the churn driver's invariants, and
the kv-incast bench cell's report plumbing.
"""

import pytest

from repro.cluster import Cluster
from repro.core.api import RvmaApi
from repro.experiments.bench import bench_kv_incast
from repro.experiments.kv_churn import run_kv_churn, run_kv_service
from repro.nic.rvma import RvmaNicConfig
from repro.observability import MetricsRegistry
from repro.services import (
    KvClient,
    KvServer,
    KvServerConfig,
    ShardMap,
    WorkloadConfig,
)
from repro.services.wire import STATUS_NOT_FOUND, STATUS_OK
from repro.sim.process import spawn


def _service_cluster(n_server=1, n_client=1, shards_per_node=2):
    from repro.experiments.chaos import CHAOS_RELIABILITY

    cluster = Cluster.build(
        n_nodes=n_server + n_client, topology="star", nic_type="rvma",
        fidelity="flow", seed=7,
        nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    shard_map = ShardMap(list(range(n_server)), shards_per_node)
    servers = [
        KvServer(cluster.nodes[n], shard_map).start() for n in range(n_server)
    ]
    return cluster, shard_map, servers


def test_kv_ops_end_to_end(engine_mode):
    """PUT/GET/DELETE/SCAN against a live server, both engine modes."""
    cluster, shard_map, servers = _service_cluster()
    client = KvClient(RvmaApi(cluster.nodes[1]), shard_map, index=0)
    seen = {}

    def driver():
        yield from client.open()
        for i in range(8):
            status = yield from client.put(b"user%02d" % i, b"v%d" % i)
            assert status == STATUS_OK
        status, value = yield from client.get(b"user03")
        seen["get"] = (status, value)
        status = yield from client.delete(b"user03")
        assert status == STATUS_OK
        status, _ = yield from client.get(b"user03")
        seen["get_after_delete"] = status
        seen["scan"] = (yield from client.scan(b"user0"))
        for server in servers:
            server.stop()

    proc = spawn(cluster.sim, driver(), "driver")
    cluster.sim.run(until=10_000_000.0)
    assert proc.finished
    assert seen["get"] == (STATUS_OK, b"v3")
    assert seen["get_after_delete"] == STATUS_NOT_FOUND
    assert seen["scan"] == sorted(
        (b"user%02d" % i, b"v%d" % i) for i in range(8) if i != 3
    )
    # Flat service metrics registered under their canonical names only.
    reg = MetricsRegistry.collect(cluster.sim)
    assert reg.undocumented() == []
    assert reg.counters["service.kv.requests"] == reg.counters["service.kv.replies"]


def test_kv_batches_land_in_shard_order():
    """A pipelined batch spanning shards returns replies in issue order."""
    cluster, shard_map, servers = _service_cluster(shards_per_node=4)
    client = KvClient(RvmaApi(cluster.nodes[1]), shard_map, index=1)
    got = []

    def driver():
        yield from client.open()
        from repro.services.wire import OP_GET, OP_PUT

        puts = [(OP_PUT, b"bk%02d" % i, b"x%d" % i) for i in range(12)]
        replies = yield from client.execute_batch(puts)
        got.append([r.status for r in replies])
        gets = [(OP_GET, b"bk%02d" % i, b"") for i in range(12)]
        replies = yield from client.execute_batch(gets)
        got.append([r.payload for r in replies])
        for server in servers:
            server.stop()

    proc = spawn(cluster.sim, driver(), "driver")
    cluster.sim.run(until=10_000_000.0)
    assert proc.finished
    assert got[0] == [STATUS_OK] * 12
    assert got[1] == [b"x%d" % i for i in range(12)]


def test_oversized_frame_is_rejected_not_held_forever():
    """A frame bigger than max_put_bytes raises instead of deadlocking
    against flow_room (a put larger than the bucket can never be paced
    in)."""
    cluster, shard_map, servers = _service_cluster()
    client = KvClient(RvmaApi(cluster.nodes[1]), shard_map, max_put_bytes=256)
    failed = []

    def driver():
        yield from client.open()
        try:
            yield from client.put(b"k", b"v" * 512)
        except ValueError as exc:
            failed.append(str(exc))
        for server in servers:
            server.stop()

    proc = spawn(cluster.sim, driver(), "driver")
    cluster.sim.run(until=10_000_000.0)
    assert proc.finished
    assert failed and "max_put_bytes" in failed[0]


def test_backpressure_engages_under_starved_buckets():
    """Small server chunks + batched writers: the transport must pace
    deliveries (rx_paced > 0) and the run must still complete exactly."""
    out = run_kv_service(
        seed=3, n_server_nodes=1, shards_per_node=1,
        n_client_nodes=4, clients_per_node=2,
        workload=WorkloadConfig(
            n_ops=160, n_keys=32, value_bytes=192, zipf_s=0.9,
            mode="closed", batch=8,
        ),
        server_config=KvServerConfig(chunk_bytes=512, n_chunks=2, poll_interval_ns=4000.0),
    )
    assert out.invariants_ok, out.error
    assert out.rx_paced > 0
    assert out.ops_completed == 160


def test_kv_churn_driver_survives_link_flaps():
    out = run_kv_service(
        seed=1, n_server_nodes=2, shards_per_node=2,
        n_client_nodes=2, clients_per_node=2,
        workload=WorkloadConfig(n_ops=96, n_keys=48, zipf_s=0.9, batch=2),
        chaos=True, drop_prob=0.02, observe=True,
    )
    assert out.invariants_ok, out.error
    assert out.p50_ns > 0 and out.p99_ns >= out.p50_ns
    # The RunReport carries the latency histogram with its quantiles.
    service = out.run_report.metrics["service"]
    assert service["service.kv.request_latency_ns"]["p99"] == pytest.approx(out.p99_ns)
    assert out.run_report.meta["harness"] == "kv-churn"


def test_kv_churn_open_loop_mode():
    out = run_kv_service(
        seed=2, n_server_nodes=1, shards_per_node=2,
        n_client_nodes=2, clients_per_node=1,
        workload=WorkloadConfig(
            n_ops=64, n_keys=32, mode="open", mean_interarrival_ns=3000.0,
        ),
    )
    assert out.invariants_ok, out.error
    assert out.ops_completed == 64


def test_kv_churn_experiment_result_shape():
    res = run_kv_churn(seeds=(1,), observe=True)
    assert res.name == "kv-churn"
    assert res.summary["all_invariants_ok"] is True
    assert len(res.rows) == 1
    assert res.run_report is not None


def test_bench_kv_incast_smoke():
    rec = bench_kv_incast(n_client_nodes=2, clients_per_node=2, n_ops=48, batch=4)
    assert rec.name == "kv-incast"
    assert rec.metrics["service.kv.requests"] == 48
    assert rec.metrics["service.kv.request_latency_ns.p50"] > 0
    assert rec.metrics["service.kv.request_latency_ns.p99"] >= (
        rec.metrics["service.kv.request_latency_ns.p50"]
    )
    assert rec.extras["invariants_ok"] is True
