"""Integration: experiment drivers and the CLI produce sane artifacts."""

import pytest

from repro.experiments import (
    run_ablation_completion,
    run_ablation_lut,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.cli import main as cli_main
from repro.network.routing import RoutingMode


def test_fig4_driver_small():
    result = run_fig4(sizes=[2, 1024], iterations=3)
    assert result.name == "fig4"
    assert len(result.rows) == 2
    assert result.summary["max_reduction_pct"] > 40
    assert result.paper_claims["max_reduction_pct"] == 65.8


def test_fig5_driver_small():
    result = run_fig5(sizes=[2], iterations=3)
    assert 30 < result.summary["max_reduction_pct"] < 55


def test_fig6_driver_small():
    result = run_fig6(sizes=[64, 4096])
    assert result.summary["max_exchanges_needed"] > 50
    # static_N column >= adaptive_N column
    for row in result.rows:
        assert row[3] >= row[5]


def test_fig7_driver_tiny_grid():
    result = run_fig7(
        n_nodes=16, topologies=("dragonfly",), rates=("100Gbps",),
        routings=(RoutingMode.ADAPTIVE,), kb=2,
    )
    assert len(result.rows) == 1
    assert result.rows[0][5] > 1.5  # speedup column
    assert result.summary["n_nodes"] == 16


def test_fig8_driver_tiny_grid():
    result = run_fig8(
        n_nodes=16, topologies=("hyperx",), rates=("100Gbps",),
        routings=(RoutingMode.STATIC,), iterations=2,
    )
    assert len(result.rows) == 1
    assert 1.0 < result.rows[0][5] < 3.5


def test_ablation_drivers():
    lut = run_ablation_lut()
    assert any(row[0] == "gen6" for row in lut.rows)
    comp = run_ablation_completion()
    assert {row[0] for row in comp.rows} == {"mwait", "poll", "cq_poll"}


def test_cli_runs_and_writes_markdown(tmp_path, capsys):
    out = tmp_path / "results.md"
    rc = cli_main(["ablation-completion", "--out", str(out)])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "A2" in captured and "regenerated" in captured
    text = out.read_text()
    assert "### ablation-completion" in text


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli_main(["fig99"])


def test_fault_recovery_driver():
    from repro.experiments import run_fault_recovery

    result = run_fault_recovery(n_steps=8, fail_at=5, step_bytes=4096,
                                step_compute_ns=20_000.0)
    rows = {row[0]: row for row in result.rows}
    rewind = rows["rewind (MPIX_Rewind)"]
    restart = rows["restart from scratch"]
    assert rewind[2] == 3  # replays only the steps after the last epoch
    assert restart[2] == 8  # replays everything
    assert rewind[1] < restart[1]
    assert result.summary["recovered_epoch"] == 4
