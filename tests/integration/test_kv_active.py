"""Integration: KV service over active mailboxes (PR 9 tentpole).

Dual-path conformance against a live server: the same scripted workload
runs once with the NIC-side GET short-circuit armed and once without,
and every client-visible reply must be byte-identical — the active path
is an optimization, never a semantic change (FIFO servers; see
docs/QOS.md for the out-of-order caveat).  Plus the host-dispatch
saving the handler exists to buy, the stale handler-served reply
accounting fix, and the flash-crowd bench cell's report plumbing.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core.api import RvmaApi
from repro.experiments.bench import bench_active_flash
from repro.nic.rvma import RvmaNicConfig
from repro.observability import MetricsRegistry
from repro.services import (
    KvClient,
    KvServer,
    KvServerConfig,
    ShardMap,
)
from repro.services.wire import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    STATUS_HANDLER_FLAG,
    STATUS_OK,
    encode_reply,
)
from repro.sim.process import spawn

HOT = (b"hot-a", b"hot-b")
COLD = (b"cold-x", b"cold-y")


def _script():
    """A deterministic op script that crosses every handler decision:
    cold-view GETs, clean serves, GETs behind unsynced writes, deletes
    on hot keys and misses."""
    ops = []
    for i, key in enumerate((*HOT, *COLD)):
        ops.append((OP_PUT, key, b"v0-%d" % i))
    for _ in range(3):
        ops += [(OP_GET, key, b"") for key in (*HOT, *COLD)]
    ops.append((OP_PUT, HOT[0], b"v1-rewrite"))
    ops += [(OP_GET, key, b"") for key in HOT]
    ops.append((OP_DELETE, HOT[1], b""))
    ops += [(OP_GET, key, b"") for key in (*HOT, b"missing")]
    for _ in range(2):
        ops += [(OP_GET, HOT[0], b"")]
    return ops


def _run_kv(active: bool):
    """One scripted run; returns (replies, final_stores, counters)."""
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow", seed=7,
    )
    shard_map = ShardMap([0], 2)
    cfg = KvServerConfig(hot_keys=HOT if active else ())
    server = KvServer(cluster.nodes[0], shard_map, config=cfg).start()
    client = KvClient(RvmaApi(cluster.nodes[1]), shard_map, index=0)
    out = {}

    def driver():
        yield from client.open()
        replies = []
        # One op per batch: a FIFO stream point the oracle can replay.
        for op in _script():
            batch = yield from client.execute_batch([op])
            replies.extend((r.status, r.payload) for r in batch)
        out["replies"] = replies
        server.stop()

    proc = spawn(cluster.sim, driver(), "driver")
    cluster.sim.run(until=50_000_000.0)
    assert proc.finished
    reg = MetricsRegistry.collect(cluster.sim)
    assert reg.undocumented() == []
    stores = {k: dict(v) for k, v in server.stores.items()}
    return out["replies"], stores, reg.counters


def test_active_replies_byte_identical_to_host_dispatch(engine_mode):
    """The conformance oracle: active-on == active-off, reply for reply."""
    replies_off, stores_off, counters_off = _run_kv(active=False)
    replies_on, stores_on, counters_on = _run_kv(active=True)
    assert replies_on == replies_off  # status AND payload, frame for frame
    assert stores_on == stores_off
    # The handler actually fired and every served GET is one host
    # dispatch the sweep loop never saw.
    served = counters_on["nic.rvma.active.served"]
    assert served > 0
    assert counters_off.get("nic.rvma.active.served", 0) == 0
    saving = counters_off["service.kv.requests"] - counters_on["service.kv.requests"]
    assert saving == served
    assert counters_on["service.kv.client.handler_served"] == served
    # Writes on hot keys synced the view (execute path) at least once.
    assert counters_on["nic.rvma.active.kv_syncs"] >= 3


def test_hot_key_get_is_actually_short_circuited():
    """≥1 fewer host dispatch per clean hot-key GET (the acceptance bar)."""
    _, _, counters = _run_kv(active=True)
    script = _script()
    hot_gets = sum(1 for op, key, _v in script if op == OP_GET and key in HOT)
    served = counters["nic.rvma.active.served"]
    # Not every hot GET is serveable (cold view before the first PUT
    # executes, dirty window behind writes, deleted key) — but the
    # steady-state repeats must all short-circuit.
    assert 0 < served <= hot_gets
    assert served >= 6  # 3 warm repeat rounds x 2 hot keys at minimum


def test_stale_handler_served_reply_is_counted():
    """Regression (PR 9 satellite): a handler-served reply landing after
    its request was locally resolved must count under the existing
    ``stale_replies`` — not vanish — and still count ``handler_served``."""
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow", seed=7,
        nic_config=RvmaNicConfig(),
    )
    client = KvClient(RvmaApi(cluster.nodes[1]), ShardMap([0], 1), index=0)
    # req 1 outstanding, req 2 already resolved (e.g. by deadline):
    client._outstanding.add(1)
    flagged = encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, 2, b"late")
    client._feed(flagged)
    assert client._stale.value == 1
    assert client._handler_served.value == 1
    assert 2 not in client._replies  # dropped, but never silently
    # The live twin still lands: outstanding handler-served replies are
    # stripped back to the canonical status before the caller sees them.
    client._feed(encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, 1, b"fresh"))
    reply, _seen = client._replies[1]
    assert (reply.status, reply.payload) == (STATUS_OK, b"fresh")
    assert client._handler_served.value == 2
    assert client._stale.value == 1


def test_bench_active_flash_smoke():
    rec = bench_active_flash(n_ops=120)
    assert rec.name == "active-flash"
    assert rec.extras["invariants_ok"] is True
    assert rec.extras["contrast_ok"] is True
    assert rec.extras["on_p99_ns"] < rec.extras["off_p99_ns"]
    assert rec.metrics["nic.rvma.active.served"] > 0
    assert (
        rec.metrics["service.kv.client.handler_served"]
        >= rec.metrics["nic.rvma.active.served"]
    )
