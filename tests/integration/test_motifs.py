"""Integration: the three motifs at small scale, both protocols.

Verifies correctness (no deadlocks, no data loss) and the *direction*
of every Figs 7-8 claim: RVMA wins, Sweep3D amplifies more than Halo3D,
and speedups grow with link rate.
"""

import pytest

from repro.cluster import Cluster
from repro.motifs import Halo3D, Incast, RdmaProtocol, RvmaProtocol, Sweep3D
from repro.network import NetworkConfig, RoutingMode
from repro.units import gbps


def _run(motif_cls, nic, link=100, routing=RoutingMode.ADAPTIVE, n=16, seed=7, **kw):
    cl = Cluster.build(
        n_nodes=n, topology="dragonfly", nic_type=nic, fidelity="flow",
        net_config=NetworkConfig(link_bw=gbps(link), routing=routing), seed=seed,
    )
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    return motif_cls(cl, proto, **kw).run(), cl


def test_sweep3d_completes_and_counts(nic_pair=("rvma", "rdma")):
    for nic in nic_pair:
        res, _ = _run(Sweep3D, nic, kb=4)
        # 8 octants x 4 blocks x 2 messages per interior step; exact count:
        # each rank sends to existing downstream neighbours only.
        assert res.messages > 0
        assert res.elapsed > 0
        assert res.protocol in ("rvma", "rdma")


def test_sweep3d_rvma_speedup_direction():
    rvma, _ = _run(Sweep3D, "rvma", kb=4)
    rdma, _ = _run(Sweep3D, "rdma", kb=4)
    assert rdma.messages == rvma.messages  # same communication pattern
    speedup = rdma.elapsed / rvma.elapsed
    assert speedup > 2.0, f"sweep3d speedup {speedup:.2f} below paper-like range"


def test_sweep3d_speedup_grows_with_link_rate():
    speeds = {}
    for link in (100, 2000):
        rvma, _ = _run(Sweep3D, "rvma", link=link, kb=4)
        rdma, _ = _run(Sweep3D, "rdma", link=link, kb=4)
        speeds[link] = rdma.elapsed / rvma.elapsed
    # Faster links shrink serialization, so fixed protocol overhead
    # dominates more: the paper's 4.4x-at-2Tbps effect.
    assert speeds[2000] > speeds[100]


def test_halo3d_rvma_speedup_in_paper_band():
    rvma, _ = _run(Halo3D, "rvma", iterations=4)
    rdma, _ = _run(Halo3D, "rdma", iterations=4)
    speedup = rdma.elapsed / rvma.elapsed
    assert 1.1 < speedup < 3.0, f"halo3d speedup {speedup:.2f} out of band"


def test_halo_speedup_smaller_than_sweep_speedup():
    s_rvma, _ = _run(Sweep3D, "rvma", kb=4)
    s_rdma, _ = _run(Sweep3D, "rdma", kb=4)
    h_rvma, _ = _run(Halo3D, "rvma", iterations=4)
    h_rdma, _ = _run(Halo3D, "rdma", iterations=4)
    assert (s_rdma.elapsed / s_rvma.elapsed) > (h_rdma.elapsed / h_rvma.elapsed)


def test_motifs_clean_under_static_routing():
    for motif_cls, kw in ((Sweep3D, dict(kb=2)), (Halo3D, dict(iterations=2))):
        for nic in ("rvma", "rdma"):
            res, cl = _run(motif_cls, nic, routing=RoutingMode.STATIC, **kw)
            assert res.elapsed > 0


def test_incast_resource_footprint_and_time():
    rvma, cl_rvma = _run(Incast, "rvma", msgs_per_client=3)
    rdma, cl_rdma = _run(Incast, "rdma", msgs_per_client=3)
    # Receiver management: constant bucket vs per-client regions.
    assert rvma.extras["server_regions"] == 0
    assert rdma.extras["server_regions"] == cl_rdma.n_nodes - 1
    # RDMA's per-client handshakes + registration dominate setup.
    assert rdma.setup_elapsed > 3 * rvma.setup_elapsed
    # And the coordinated per-message cycle is slower end-to-end too.
    assert rdma.elapsed > rvma.elapsed


def test_motif_results_record_bytes():
    res, _ = _run(Sweep3D, "rvma", kb=2, msg_bytes=1024)
    assert res.bytes_moved == res.messages * 1024
    assert res.total == res.setup_elapsed + res.elapsed


def test_motif_rejects_mismatched_protocol():
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    with pytest.raises(ValueError):
        Sweep3D(cl, RdmaProtocol())


def test_sweep_custom_grid_validation():
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    with pytest.raises(ValueError):
        Sweep3D(cl, RvmaProtocol(), px=3, py=3)  # 9 != 8


def test_halo_custom_grid_validation():
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    with pytest.raises(ValueError):
        Halo3D(cl, RvmaProtocol(), grid=(2, 2, 3))


def test_halo_26_neighbour_stencil():
    from repro.motifs.halo3d import OFFSETS_26

    assert len(OFFSETS_26) == 26
    results = {}
    for nic in ("rvma", "rdma"):
        res, cl = _run(Halo3D, nic, n=27, iterations=2, neighbours=26,
                       msg_bytes=8192)
        results[nic] = res
    rvma, rdma = results["rvma"], results["rdma"]
    # Identical traffic for both protocols; interior rank has 26 channels.
    assert rvma.messages == rdma.messages
    assert rvma.bytes_moved == rdma.bytes_moved
    # Edges/corners shrink the payload: strictly less than 26 full faces.
    assert rvma.bytes_moved < rvma.messages * 8192
    assert rdma.elapsed > rvma.elapsed


def test_halo_neighbours_argument_validated():
    cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity="flow")
    with pytest.raises(ValueError):
        Halo3D(cl, RvmaProtocol(), neighbours=18)
