"""Differential backend suite: RVMA vs RDMA-verbs vs UCX, byte-for-byte.

The three protocol adapters ride completely different software stacks
(mailbox puts, registered-region writes with ready/ack/signal, UCP tag
matching) over the same fabric model.  For every traffic motif and
pinned seed, all three must deliver *byte-identical* payload sequences
and identical completion counts — any divergence is a protocol-adapter
bug, not a modelling choice.

Patterns are deliberately tiny (4 nodes, a handful of messages, <=512B)
so the matrix (3 backends x 3 patterns x 5 seeds x 2 engine modes)
stays cheap.
"""

import pytest

from repro.cluster import Cluster
from repro.motifs import RdmaProtocol, RvmaProtocol, UcxProtocol, assign_targets
from repro.network.routing import RoutingMode
from repro.sim.process import spawn

N_NODES = 4
MAX_MSG = 512
SEEDS = (11, 23, 37, 41, 59)

BACKENDS = {
    "rvma": lambda: RvmaProtocol(mode=RoutingMode.STATIC),
    "verbs": lambda: RdmaProtocol(mode=RoutingMode.STATIC),
    "ucx": lambda: UcxProtocol(mode=RoutingMode.STATIC),
}

PATTERNS = ("transfer", "randompairs", "incast")


def _channels(pattern: str, seed: int) -> dict[tuple[int, int], int]:
    """{(src, dst): n_msgs} for the pattern; deterministic in seed."""
    if pattern == "transfer":
        return {(0, 1): 4}
    if pattern == "incast":
        return {(s, 0): 2 for s in range(1, N_NODES)}
    targets = assign_targets(N_NODES, 3, seed)
    out: dict[tuple[int, int], int] = {}
    for src, dsts in targets.items():
        for dst in dsts:
            out[(src, dst)] = out.get((src, dst), 0) + 1
    return out


def _size(seed: int, src: int, dst: int, i: int) -> int:
    return 64 + ((src * 13 + dst * 7 + i * 29 + seed) % (MAX_MSG - 64))


def _payload(seed: int, src: int, dst: int, i: int) -> bytes:
    size = _size(seed, src, dst, i)
    base = src * 31 + dst * 17 + i * 3 + seed
    return bytes((base + j) % 256 for j in range(size))


def _run_pattern(factory, pattern: str, seed: int):
    """One backend, one pattern, one seed.  Returns (delivered, counts)."""
    proto = factory()
    cluster = Cluster.build(
        n_nodes=N_NODES, topology="star", nic_type=proto.nic_type,
        fidelity="flow", seed=seed,
    )
    delivered: dict[tuple, bytes] = {}
    counts: dict[tuple, int] = {}
    channels = _channels(pattern, seed)
    tags = {ch: 100 + k for k, ch in enumerate(sorted(channels))}

    def receiver(src, dst, tag, n_msgs):
        ep = yield from proto.recv_setup(
            cluster.nodes[dst], src, tag, MAX_MSG, slots=n_msgs
        )
        for i in range(n_msgs):
            data = yield from ep.recv_data(_size(seed, src, dst, i))
            delivered[(pattern, src, dst, i)] = data
        counts[(src, dst)] = ep.received

    def sender(src, dst, tag, n_msgs):
        ep = yield from proto.send_setup(cluster.nodes[src], dst, tag, MAX_MSG)
        for i in range(n_msgs):
            payload = _payload(seed, src, dst, i)
            yield from ep.send(len(payload), payload)

    procs = []
    for (src, dst), n_msgs in sorted(channels.items()):
        tag = tags[(src, dst)]
        procs.append(spawn(cluster.sim, receiver(src, dst, tag, n_msgs), f"recv-{src}-{dst}"))
        procs.append(spawn(cluster.sim, sender(src, dst, tag, n_msgs), f"send-{src}-{dst}"))
    cluster.sim.run(until=50_000_000.0)
    stuck = [p.name for p in procs if not p.finished]
    assert not stuck, f"{proto.name}/{pattern}/seed={seed} stalled: {stuck}"
    return delivered, counts


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_deliver_identical_bytes(seed, engine_mode):
    """All three backends: byte-identical payloads, identical counts."""
    results = {}
    for name, factory in BACKENDS.items():
        delivered: dict[tuple, bytes] = {}
        counts: dict[tuple, tuple] = {}
        for pattern in PATTERNS:
            d, c = _run_pattern(factory, pattern, seed)
            delivered.update(d)
            counts.update({(pattern, *k): v for k, v in c.items()})
        results[name] = (delivered, counts)

    # Ground truth: every delivered message matches the generator.
    base_delivered, base_counts = results["rvma"]
    for (pattern, src, dst, i), data in base_delivered.items():
        assert data == _payload(seed, src, dst, i), (pattern, src, dst, i)

    for name in ("verbs", "ucx"):
        got_delivered, got_counts = results[name]
        assert got_delivered == base_delivered, f"{name} diverged from rvma"
        assert got_counts == base_counts, f"{name} completion counts diverged"


def test_channel_matrix_covers_expected_shapes():
    """The pattern generator itself: full coverage, no self-sends."""
    for seed in SEEDS:
        for pattern in PATTERNS:
            ch = _channels(pattern, seed)
            assert ch, pattern
            assert all(src != dst for src, dst in ch)
            total = sum(ch.values())
            if pattern == "transfer":
                assert total == 4
            elif pattern == "incast":
                assert set(dst for _, dst in ch) == {0} and total == 6
            else:
                assert total == N_NODES * 3  # every rank sends 3
