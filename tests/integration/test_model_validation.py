"""Model-validation tests (DESIGN.md §7 quality gates).

These pin down properties the *simulator itself* must have for the
reproduction to be trustworthy: scale consistency of the headline
ratios, adaptive routing actually helping under hotspots, and exact
determinism under a fixed seed.
"""

import pytest

from repro.cluster import Cluster
from repro.motifs import RdmaProtocol, RvmaProtocol, Sweep3D
from repro.network import FlowFabric, NetworkConfig, RoutingMode, make_topology
from repro.sim import Simulator
from repro.units import gbps


def _sweep_speedup(n_nodes: int) -> float:
    out = {}
    for nic in ("rvma", "rdma"):
        cl = Cluster.build(
            n_nodes=n_nodes, topology="dragonfly", nic_type=nic, fidelity="flow",
            net_config=NetworkConfig(link_bw=gbps(100), routing=RoutingMode.ADAPTIVE),
        )
        proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
        out[nic] = Sweep3D(cl, proto, kb=4, compute_ns=900.0).run().elapsed
    return out["rdma"] / out["rvma"]


def test_sweep_speedup_stable_across_scales():
    """The headline ratio must be a protocol property, not an artifact
    of one node count: 16 -> 64 -> 144 ranks stay in a tight band."""
    speedups = [_sweep_speedup(n) for n in (16, 64, 144)]
    assert max(speedups) / min(speedups) < 1.4, speedups
    assert all(s > 2.0 for s in speedups)


def test_adaptive_routing_beats_static_under_hotspot():
    """Sanity for the network model itself: when many flows share one
    D-mod-k core, adaptive candidates spread the load and finish sooner."""
    times = {}
    for routing in (RoutingMode.STATIC, RoutingMode.ADAPTIVE):
        sim = Simulator(seed=11)
        topo = make_topology("fattree", 16)
        fab = FlowFabric(sim, topo, NetworkConfig(routing=routing, link_bw=gbps(100)))
        last = [0.0]
        for n in range(16):
            fab.attach(n, lambda d: last.__setitem__(0, max(last[0], d.info.arrival_time)))
        # Hotspot: 6 senders in other pods blast one destination's pod.
        for src in (4, 6, 8, 10, 12, 14):
            for _ in range(4):
                fab.send(src, 1, 200_000)
        sim.run()
        times[routing] = last[0]
    assert times[RoutingMode.ADAPTIVE] < times[RoutingMode.STATIC]


def test_identical_seed_identical_motif_timeline():
    def run(seed):
        cl = Cluster.build(
            n_nodes=16, topology="hyperx", nic_type="rvma", fidelity="flow", seed=seed
        )
        res = Sweep3D(cl, RvmaProtocol(), kb=3).run()
        return res.elapsed, cl.sim.events_executed

    a = run(42)
    b = run(42)
    c = run(43)
    assert a == b
    # A different seed changes adaptive choices; the run still succeeds
    # and lands in the same regime (timing may or may not coincide).
    assert c[0] > 0


def test_rdma_and_rvma_move_identical_payload_volumes():
    """Fairness check: the comparison never gives RVMA less work."""
    stats = {}
    for nic in ("rvma", "rdma"):
        cl = Cluster.build(n_nodes=16, topology="dragonfly", nic_type=nic, fidelity="flow")
        proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
        res = Sweep3D(cl, proto, kb=4).run()
        stats[nic] = (res.messages, res.bytes_moved)
    assert stats["rvma"] == stats["rdma"]


def test_dmodk_hotspot_is_switch_link_not_injection():
    """The fat-tree/static outlier in Figs 7-8 is a real D-mod-k
    convergence hotspot: under static routing the hottest channel is an
    inter-switch link carrying multiples of any channel's load under
    adaptive routing, where the (unavoidable) injection channels lead."""
    from repro.motifs import Halo3D, RvmaProtocol
    from repro.network import LINK_RATES, NetworkConfig

    hottest = {}
    for routing in (RoutingMode.STATIC, RoutingMode.ADAPTIVE):
        cl = Cluster.build(
            n_nodes=64, topology="fattree", nic_type="rvma", fidelity="flow",
            net_config=NetworkConfig(link_bw=LINK_RATES["2Tbps"], routing=routing),
        )
        Halo3D(cl, RvmaProtocol(), iterations=3, msg_bytes=96 * 1024).run()
        hottest[routing] = cl.fabric.hottest_channels(1)[0]
    static_name, static_bytes = hottest[RoutingMode.STATIC]
    adaptive_name, adaptive_bytes = hottest[RoutingMode.ADAPTIVE]
    assert static_name.startswith("link[")  # converged switch link
    assert adaptive_name.startswith("inject[")  # balanced: injection floor
    assert static_bytes > 2 * adaptive_bytes


def test_headline_speedup_robust_across_seeds():
    """The dragonfly/adaptive speedup is a protocol property, not an
    artifact of one RNG seed's adaptive choices."""
    speedups = []
    for seed in (7, 99, 12345):
        out = {}
        for nic in ("rvma", "rdma"):
            cl = Cluster.build(
                n_nodes=32, topology="dragonfly", nic_type=nic, fidelity="flow",
                net_config=NetworkConfig(link_bw=gbps(2000), routing=RoutingMode.ADAPTIVE),
                seed=seed,
            )
            proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
            out[nic] = Sweep3D(cl, proto, kb=4, compute_ns=900.0).run().elapsed
        speedups.append(out["rdma"] / out["rvma"])
    assert max(speedups) / min(speedups) < 1.15, speedups
    assert all(s > 2.5 for s in speedups)
