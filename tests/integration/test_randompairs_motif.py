"""Integration: the random-pairs (uniform traffic) motif."""

import pytest

from repro.cluster import Cluster
from repro.motifs import RandomPairs, RdmaProtocol, RvmaProtocol
from repro.motifs.randompairs import assign_targets


def _run(nic, n=16, **kw):
    cl = Cluster.build(n_nodes=n, topology="dragonfly", nic_type=nic, fidelity="flow")
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    return RandomPairs(cl, proto, **kw).run(), cl


def test_target_assignment_deterministic_and_never_self():
    a = assign_targets(20, 8, seed=7)
    b = assign_targets(20, 8, seed=7)
    c = assign_targets(20, 8, seed=8)
    assert a == b and a != c
    for rank, targets in a.items():
        assert len(targets) == 8
        assert all(0 <= t < 20 and t != rank for t in targets)


@pytest.mark.parametrize("nic", ["rvma", "rdma"])
def test_all_messages_delivered(nic):
    res, cl = _run(nic, msgs_per_rank=5)
    assert res.messages == 16 * 5
    assert cl.sim.stats.counters().get("rvma0.puts_lost", 0) == 0


def test_rvma_needs_no_pair_state():
    rvma, _ = _run("rvma", msgs_per_rank=5)
    rdma, _ = _run("rdma", msgs_per_rank=5)
    assert rvma.extras["pair_channels"] == 0
    assert rvma.extras["registered_regions"] == 0
    assert rdma.extras["pair_channels"] > 16  # many live pairs
    assert rdma.extras["registered_regions"] == rdma.extras["pair_channels"]
    # Per-pair handshakes dominate RDMA setup.
    assert rdma.setup_elapsed > 5 * rvma.setup_elapsed
    # And the anonymous-put data phase wins too.
    assert rdma.elapsed > 1.5 * rvma.elapsed


def test_rdma_rank_cap_enforced():
    cl = Cluster.build(n_nodes=256, topology="dragonfly", nic_type="rdma", fidelity="flow")
    with pytest.raises(ValueError):
        RandomPairs(cl, RdmaProtocol())
