"""Integration: full protocol stacks end-to-end over the packet fabric."""

import pytest

from repro.cluster import Cluster
from repro.core import EpochType, RvmaApi
from repro.memory.buffer import HostBuffer
from repro.network import MTU, NetworkConfig, RoutingMode
from repro.rdma import CompletionMode, VerbsEndpoint, client_request_region, server_serve_region

from tests.helpers import run_gens


def _cluster(nic, routing=RoutingMode.ADAPTIVE, topology="fattree", n=16):
    return Cluster.build(
        n_nodes=n, topology=topology, nic_type=nic, fidelity="packet",
        net_config=NetworkConfig(routing=routing),
    )


def test_rvma_multi_packet_put_reassembles_out_of_order():
    """A put spanning many packets over an adaptive (reordering) network
    must land byte-exact — RVMA's offset-steered placement at work."""
    cl = _cluster("rvma")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(15))
    size = MTU * 7 + 123
    payload = bytes((i * 37 + 11) % 256 for i in range(size))

    def receiver():
        win = yield from api1.init_window(0x1, epoch_threshold=size)
        yield from api1.post_buffer(win, size=size)
        info = yield from api1.wait_completion(win)
        return info

    def sender():
        yield 2000.0
        op = yield from api0.put(15, 0x1, data=payload)
        yield op.local_done

    info, _ = run_gens(cl.sim, receiver(), sender())
    assert info.length == size
    assert info.read_data() == payload
    # The network genuinely reordered (adaptive fat-tree, many packets).
    assert cl.fabric.packets_delivered == 8


def test_rvma_epoch_pipeline_multiple_buffers():
    """Three puts complete three successive buffers; each epoch's data
    is intact and completion order follows posting order."""
    cl = _cluster("rvma")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(7))
    msgs = [bytes([i]) * 512 for i in (1, 2, 3)]

    def receiver():
        win = yield from api1.init_window(0x2, epoch_threshold=1,
                                          epoch_type=EpochType.EPOCH_OPS)
        for _ in msgs:
            yield from api1.post_buffer(win, size=512)
        out = []
        for _ in msgs:
            info = yield from api1.wait_completion(win)
            out.append(info.read_data())
        return out

    def sender():
        yield 2000.0
        for m in msgs:
            op = yield from api0.put(7, 0x2, data=m)
            yield op.local_done
            yield 2000.0  # serialize so arrival order is deterministic

    out, _ = run_gens(cl.sim, receiver(), sender())
    assert out == msgs
    assert cl.node(7).nic.lut.lookup(0x2).epoch == 3


def test_rdma_full_stack_handshake_write_signal():
    """RDMA spec-compliant transfer on an adaptive network: handshake,
    multi-packet write, ack fence, signalling send, recv CQE."""
    cl = _cluster("rdma")
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(9))
    size = MTU * 3 + 77
    payload = bytes((i * 13 + 5) % 256 for i in range(size))

    def server():
        landing, _ = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl.node(9).memory, 64)
        yield from v1.post_recv(ctl, wr_id=1, tag=1)
        yield from v1.wait_write_completion(
            landing, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE, ctl, wr_id=1
        )
        return landing.read(0, size)

    def client():
        hs = yield from client_request_region(v0, server=9, size=size)
        yield from v0.write_with_completion(
            9, hs.region, size, payload, mode=RoutingMode.ADAPTIVE, wr_id=1
        )

    data, _ = run_gens(cl.sim, server(), client())
    assert data == payload


def test_rvma_beats_rdma_one_way_latency_on_adaptive():
    """The Fig 4 effect, end to end on the same fat-tree: the RVMA
    receiver learns completion well before the RDMA receiver does."""
    size = 2048
    done = {}

    # RVMA side
    cl = _cluster("rvma")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(5))

    def rvma_rx():
        win = yield from api1.init_window(0x3, epoch_threshold=size)
        yield from api1.post_buffer(win, size=size)
        yield from api1.wait_completion(win)
        done["rvma"] = cl.sim.now - done["rvma_t0"]

    def rvma_tx():
        yield 2000.0
        done["rvma_t0"] = cl.sim.now
        yield from api0.put(5, 0x3, size=size)

    run_gens(cl.sim, rvma_rx(), rvma_tx())

    # RDMA side (same network parameters)
    cl2 = _cluster("rdma")
    v0, v1 = VerbsEndpoint(cl2.node(0)), VerbsEndpoint(cl2.node(5))

    def rdma_rx():
        landing, _ = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl2.node(5).memory, 64)
        yield from v1.post_recv(ctl, wr_id=1, tag=1)
        yield from v1.wait_write_completion(
            landing, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE, ctl, wr_id=1
        )
        done["rdma"] = cl2.sim.now - done["rdma_t0"]

    def rdma_tx():
        hs = yield from client_request_region(v0, server=5, size=size)
        done["rdma_t0"] = cl2.sim.now
        yield from v0.write_with_completion(
            5, hs.region, size, mode=RoutingMode.ADAPTIVE, wr_id=1
        )

    run_gens(cl2.sim, rdma_rx(), rdma_tx())
    assert done["rvma"] < done["rdma"]
    assert done["rdma"] / done["rvma"] > 1.5


def test_flow_and_packet_fidelity_agree_at_small_scale():
    """The flow model must track the packet model on an uncontended
    2-node transfer (DESIGN.md's fidelity-agreement gate)."""
    size = 16384
    results = {}
    for fidelity in ("flow", "packet"):
        cl = Cluster.build(
            n_nodes=2, topology="star", nic_type="rvma", fidelity=fidelity,
            net_config=NetworkConfig(routing=RoutingMode.STATIC),
        )
        api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
        t = {}

        def rx(api1=api1, cl=cl, t=t):
            win = yield from api1.init_window(0x4, epoch_threshold=size)
            yield from api1.post_buffer(win, size=size)
            yield from api1.wait_completion(win)
            t["lat"] = cl.sim.now - t["t0"]

        def tx(api0=api0, cl=cl, t=t):
            yield 1000.0
            t["t0"] = cl.sim.now
            yield from api0.put(1, 0x4, size=size)

        run_gens(cl.sim, rx(), tx())
        results[fidelity] = t["lat"]
    ratio = results["flow"] / results["packet"]
    # Packet mode pipelines fragments (cut-through per MTU), flow mode
    # serializes the whole message once; they must agree within ~25%.
    assert 0.75 < ratio < 1.25, results
