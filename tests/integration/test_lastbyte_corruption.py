"""The failure mode that motivates the paper (§II, §IV-D):

last-byte polling on an adaptively routed network can signal
"complete" while earlier bytes are still in flight, handing the
application a corrupted buffer.  This test makes the simulator
reproduce that bug — and shows RVMA's threshold completion is immune
on the *same* reordering network.
"""

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.memory.buffer import HostBuffer
from repro.memory.mwait import POLL
from repro.network import MTU, NetworkConfig, RoutingMode
from repro.rdma import VerbsEndpoint, client_request_region, server_serve_region

from tests.helpers import run_gens

#: Big enough that many packets are in flight over distinct fat-tree paths.
SIZE = MTU * 12


def _payload():
    data = bytearray((i * 7 + 3) % 251 for i in range(SIZE))
    data[-1] = 0xEE  # the sentinel the poller watches
    return bytes(data)


def _net(routing):
    return NetworkConfig(routing=routing)


def test_rdma_last_byte_poll_premature_on_adaptive_network():
    cl = Cluster.build(
        n_nodes=16, topology="fattree", nic_type="rdma", fidelity="packet",
        net_config=_net(RoutingMode.ADAPTIVE),
    )
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(15))
    payload = _payload()
    observed = {}

    def server():
        landing, _ = yield from server_serve_region(v1, client=0)
        # The (unsafe!) static-routing idiom on an adaptive network:
        yield v1.node.waiter.wait_for_byte(landing.addr + SIZE - 1, 0xEE, POLL)
        # "Complete" was signalled: snapshot what the application reads.
        observed["snapshot"] = landing.read(0, SIZE)
        observed["at"] = cl.sim.now

    def client():
        hs = yield from client_request_region(v0, server=15, size=SIZE)
        # Background flows congest some up-paths, so adaptive routing
        # sends our packets down paths of very different queue depth —
        # the realistic condition under which reordering bites.
        for src in range(1, 5):
            cl.fabric.send(src, 14, MTU * 8)
        op = yield from v0.rdma_write(
            15, hs.region, SIZE, payload, mode=RoutingMode.ADAPTIVE, signaled=False
        )
        yield op.done

    run_gens(cl.sim, server(), client())
    # The poller fired before all packets landed: the buffer it handed
    # the application differs from what was sent — the corruption the
    # paper warns about.
    assert observed["snapshot"] != payload
    assert observed["snapshot"][-1:] == b"\xee"  # last byte was there...
    missing = sum(
        1 for a, b in zip(observed["snapshot"], payload) if a != b
    )
    assert missing > 0  # ...but earlier bytes were not


def test_rdma_last_byte_poll_correct_on_static_network():
    cl = Cluster.build(
        n_nodes=16, topology="fattree", nic_type="rdma", fidelity="packet",
        net_config=_net(RoutingMode.STATIC),
    )
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(15))
    payload = _payload()
    observed = {}

    def server():
        landing, _ = yield from server_serve_region(v1, client=0)
        yield v1.node.waiter.wait_for_byte(landing.addr + SIZE - 1, 0xEE, POLL)
        observed["snapshot"] = landing.read(0, SIZE)

    def client():
        hs = yield from client_request_region(v0, server=15, size=SIZE)
        for src in range(1, 5):  # same congestion as the adaptive case
            cl.fabric.send(src, 14, MTU * 8)
        op = yield from v0.rdma_write(
            15, hs.region, SIZE, payload, mode=RoutingMode.STATIC, signaled=False
        )
        yield op.done

    run_gens(cl.sim, server(), client())
    # In-order delivery: the last byte really is last; buffer is intact.
    assert observed["snapshot"] == payload


def test_rvma_threshold_completion_immune_to_reordering():
    cl = Cluster.build(
        n_nodes=16, topology="fattree", nic_type="rvma", fidelity="packet",
        net_config=_net(RoutingMode.ADAPTIVE),
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(15))
    payload = _payload()

    def receiver():
        win = yield from api1.init_window(0x5, epoch_threshold=SIZE)
        yield from api1.post_buffer(win, size=SIZE)
        info = yield from api1.wait_completion(win)
        return info.read_data()

    def sender():
        yield 2000.0
        for src in range(1, 5):  # same congestion as the RDMA cases
            cl.fabric.send(src, 14, MTU * 8)
        op = yield from api0.put(15, 0x5, data=payload)
        yield op.local_done

    data, _ = run_gens(cl.sim, receiver(), sender())
    # Same reordering network, but the byte-count threshold only fires
    # once every byte is placed: the buffer is exact.
    assert data == payload
