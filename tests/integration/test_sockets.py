"""Integration: the sockets-over-RVMA layer (paper §IV-B middleware)."""

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.network import NetworkConfig, RoutingMode
from repro.sockets import Connection, RvmaListener, SocketError, connect
from repro.sim import spawn


@pytest.fixture(autouse=True)
def _both_engine_modes(engine_mode):
    """Every sockets test runs under both the fast and plain engines —
    the receiver-managed stream protocol is sensitive to event order,
    so it doubles as a scheduler-equivalence check."""


def _cluster(n=2):
    return Cluster.build(
        n_nodes=n, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )


def _drive(cl, *gens):
    procs = [spawn(cl.sim, g, f"p{i}") for i, g in enumerate(gens)]
    cl.sim.run()
    stuck = [p.name for p in procs if not p.finished]
    assert not stuck, f"deadlocked: {stuck}"
    return [p.result for p in procs]


def test_connect_accept_roundtrip():
    cl = _cluster()
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        listener = yield from RvmaListener(srv_api, port=7, chunk_size=32).listen()
        conn = yield from listener.accept()
        assert conn.peer_node == 1
        data = yield from conn.recv(32)
        yield from conn.send(data[::-1])

    def client():
        yield 1000.0
        conn = yield from connect(cli_api, 0, port=7, chunk_size=32)
        yield from conn.send(b"0123456789abcdef" * 2)
        echo = yield from conn.recv(32)
        return echo

    _, echo = _drive(cl, server(), client())
    assert echo == (b"0123456789abcdef" * 2)[::-1]


def test_recv_exact_spans_multiple_chunks():
    cl = _cluster()
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    payload = bytes(range(256)) * 2  # 512 B over 64 B chunks

    def server():
        listener = yield from RvmaListener(srv_api, port=9, chunk_size=64).listen()
        conn = yield from listener.accept()
        data = yield from conn.recv(len(payload))
        return data

    def client():
        yield 1000.0
        conn = yield from connect(cli_api, 0, port=9, chunk_size=64)
        # Ragged writes that do not align with chunk boundaries.
        for cut in (0, 13, 100, 101, 399):
            pass
        pieces = [payload[:13], payload[13:100], payload[100:101], payload[101:399],
                  payload[399:]]
        for piece in pieces:
            yield from conn.send(piece)

    data, _ = _drive(cl, server(), client())
    assert data == payload


def test_recv_buffers_excess_for_later_calls():
    cl = _cluster()
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        listener = yield from RvmaListener(srv_api, port=11, chunk_size=16).listen()
        conn = yield from listener.accept()
        first = yield from conn.recv(4)  # chunk is 16: 12 bytes buffered
        second = yield from conn.recv(12)
        return first, second

    def client():
        yield 1000.0
        conn = yield from connect(cli_api, 0, port=11, chunk_size=16)
        yield from conn.send(b"AAAABBBBBBBBBBBB")

    (first, second), _ = _drive(cl, server(), client())
    assert first == b"AAAA"
    assert second == b"B" * 12


def test_flush_peer_tail_pushes_partial_chunk():
    cl = _cluster()
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        listener = yield from RvmaListener(srv_api, port=13, chunk_size=64).listen()
        conn = yield from listener.accept()
        yield 20000.0  # client's short message sits in a partial chunk
        n = yield from conn.flush_peer_tail()
        data = yield from conn.recv(n)
        return data

    def client():
        yield 1000.0
        conn = yield from connect(cli_api, 0, port=13, chunk_size=64)
        yield from conn.send(b"short")

    data, _ = _drive(cl, server(), client())
    assert data == b"short"


def test_multiple_sequential_clients_one_port():
    cl = _cluster(n=4)
    srv_api = RvmaApi(cl.node(0))
    served = []

    def server():
        listener = yield from RvmaListener(srv_api, port=21, chunk_size=32).listen()
        for _ in range(3):
            conn = yield from listener.accept()
            req = yield from conn.recv(32)
            served.append((conn.peer_node, req[:6]))
            yield from conn.send(req)

    def client(node):
        yield 1000.0 * node
        conn = yield from connect(RvmaApi(cl.node(node)), 0, port=21, chunk_size=32)
        yield from conn.send(f"node{node:02d}".encode().ljust(32, b"!"))
        yield from conn.recv(32)

    _drive(cl, server(), client(1), client(2), client(3))
    assert sorted(served) == [
        (1, b"node01"), (2, b"node02"), (3, b"node03")
    ]


def test_send_after_close_raises():
    cl = _cluster()
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        listener = yield from RvmaListener(srv_api, port=31, chunk_size=16).listen()
        conn = yield from listener.accept()
        yield from conn.recv(16)

    def client():
        yield 1000.0
        conn = yield from connect(cli_api, 0, port=31, chunk_size=16)
        yield from conn.send(b"x" * 16)
        conn.closed = True
        with pytest.raises(SocketError):
            next(conn.send(b"y"))

    _drive(cl, server(), client())


def test_bidirectional_full_duplex_streams():
    cl = _cluster()
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        listener = yield from RvmaListener(srv_api, port=41, chunk_size=32).listen()
        conn = yield from listener.accept()
        # Send before receiving: directions are independent windows.
        yield from conn.send(b"S" * 32)
        got = yield from conn.recv(32)
        return got

    def client():
        yield 1000.0
        conn = yield from connect(cli_api, 0, port=41, chunk_size=32)
        yield from conn.send(b"C" * 32)
        got = yield from conn.recv(32)
        return got

    srv_got, cli_got = _drive(cl, server(), client())
    assert srv_got == b"C" * 32
    assert cli_got == b"S" * 32
