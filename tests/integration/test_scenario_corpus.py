"""Integration: the checked-in scenario corpus is a live regression gate.

Every entry under ``corpus/`` replays with exactly its recorded
expectation — pinned passes must pass, pinned failures must fail with
the identical fingerprint.  Divergence means a behaviour change the
fuzzer once caught has resurfaced (or a pinned pass broke).
"""

from __future__ import annotations

from repro.scenarios import (
    CORPUS_DIR,
    FailureFingerprint,
    generate,
    list_entries,
    load_entry,
    replay_corpus,
    save_entry,
)
from repro.scenarios.cli import fuzz_main


def test_checked_in_corpus_replays_exactly():
    entries = list_entries()
    assert entries, f"corpus at {CORPUS_DIR} should not be empty"
    verdicts = replay_corpus()
    diverged = [v.describe() for v in verdicts if not v.ok]
    assert not diverged, "corpus divergence:\n" + "\n".join(diverged)
    # The corpus pins both shapes: at least one failure reproduction and
    # at least one known-good scenario held at "pass".
    assert any(e.expected for e in entries)
    assert any(not e.expected for e in entries)


def test_corpus_entries_are_plain_replayable_scenarios():
    # The x_* expectation keys are advisory: every entry is loadable by
    # the plain schema loader, so `fuzz replay <entry>` works directly.
    from repro.scenarios import Scenario

    for entry in list_entries():
        assert Scenario.load(str(entry.path)) == entry.scenario


def test_save_and_load_entry_round_trip(tmp_path):
    scenario = generate(5)
    fp = FailureFingerprint.collect(["invariant:gave_up"])
    path = save_entry(scenario, fp, note="unit round-trip", corpus_dir=tmp_path)
    assert path.name == f"{scenario.scenario_id}.json"
    entry = load_entry(path)
    assert entry.scenario == scenario
    assert entry.expected == fp
    assert entry.note == "unit round-trip"


def test_fuzz_cli_corpus_replay_passes():
    assert fuzz_main(["corpus"]) == 0
