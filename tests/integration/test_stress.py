"""Stress tests: resource exhaustion and many-window behaviour.

Exercises the bounded-hardware story (paper §III-B): limited NIC
counters spill to host memory with a measurable penalty but no
correctness loss; many concurrent windows on one NIC stay isolated.
"""

import pytest

from repro.cluster import Cluster
from repro.core import EpochType, RvmaApi
from repro.nic.rvma import RvmaNicConfig
from repro.sim import spawn

from tests.helpers import run_gens


def test_many_windows_stay_isolated():
    """64 windows on one node, interleaved senders: every window sees
    exactly its own traffic."""
    n_windows = 64
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    results = {}

    def receiver():
        wins = []
        for w in range(n_windows):
            win = yield from api1.init_window(0x1000 + w, epoch_threshold=16)
            yield from api1.post_buffer(win, size=16)
            wins.append(win)
        for w, win in enumerate(wins):
            info = yield from api1.wait_completion(win)
            results[w] = info.read_data()

    def sender():
        yield 100_000.0  # let all windows arm
        # Send in reverse order so completion order != posting order.
        for w in reversed(range(n_windows)):
            op = yield from api0.put(1, 0x1000 + w, data=bytes([w]) * 16)
            yield op.local_done

    run_gens(cl.sim, receiver(), sender())
    assert len(results) == n_windows
    for w, data in results.items():
        assert data == bytes([w]) * 16, f"window {w} got foreign data"


def test_counter_spill_under_window_pressure_is_correct_but_slower():
    """More active buffers than NIC counters: completions still fire
    (via host-memory counters) and the spill penalty is visible."""
    n_windows = 8

    def run(counters: int) -> float:
        cfg = RvmaNicConfig(nic_counters=counters)
        cl = Cluster.build(
            n_nodes=2, topology="star", nic_type="rvma", fidelity="flow",
            nic_config=cfg,
        )
        api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
        done = {}

        def receiver():
            wins = []
            for w in range(n_windows):
                win = yield from api1.init_window(0x2000 + w, epoch_threshold=8)
                yield from api1.post_buffer(win, size=8)
                wins.append(win)
            for win in wins:
                yield from api1.wait_completion(win)
            done["t"] = cl.sim.now

        def sender():
            yield 50_000.0
            done["t0"] = cl.sim.now
            for w in range(n_windows):
                op = yield from api0.put(1, 0x2000 + w, size=8)
                yield op.local_done

        run_gens(cl.sim, receiver(), sender())
        if counters == 0:
            assert cl.node(1).nic.lut.spill_events == n_windows
            assert cl.sim.stats.counter("rvma1.spilled_completions").value == n_windows
        return done["t"] - done["t0"]

    fast = run(counters=1024)
    slow = run(counters=0)
    assert slow > fast  # spill pays the PCIe round trip per completion


def test_lut_entry_exhaustion_surfaces_cleanly():
    cfg = RvmaNicConfig(lut_entries=4)
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow", nic_config=cfg
    )
    api1 = RvmaApi(cl.node(1))
    outcome = {}

    def receiver():
        from repro.core import RvmaApiError

        made = 0
        try:
            for w in range(8):
                yield from api1.init_window(0x3000 + w, epoch_threshold=8)
                made += 1
        except RvmaApiError as exc:
            outcome["made"] = made
            outcome["status"] = exc.status

    proc = spawn(cl.sim, receiver(), "rx")
    cl.sim.run()
    assert proc.finished
    assert outcome["made"] == 4
    from repro.core import RvmaStatus

    assert outcome["status"] is RvmaStatus.ERR_NO_RESOURCES


def test_deep_epoch_churn_single_window():
    """One window cycles through 200 epochs; epochs stay dense and the
    retained ring holds exactly the configured tail."""
    cfg = RvmaNicConfig(retain_epochs=5)
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow", nic_config=cfg
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    epochs = 200

    def receiver():
        win = yield from api1.init_window(0x4000, epoch_threshold=1,
                                          epoch_type=EpochType.EPOCH_OPS)
        for _ in range(4):
            yield from api1.post_buffer(win, size=32)
        for _ in range(epochs):
            info = yield from api1.wait_completion(win)
            yield from api1.post_buffer(win, buffer=info.record.buffer)
        entry = cl.node(1).nic.lut.lookup(0x4000)
        return entry

    def sender():
        yield 20_000.0
        for _ in range(epochs):
            op = yield from api0.put(1, 0x4000, size=32)
            yield op.local_done

    entry, _ = run_gens(cl.sim, receiver(), sender())
    assert entry.epoch == epochs
    assert len(entry.retired) == 5
    assert [r.epoch for r in entry.retired] == list(range(epochs - 5, epochs))
