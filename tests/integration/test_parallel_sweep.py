"""The parallel motif-sweep grid must agree exactly with the serial one."""

from repro.experiments.motif_sweep import run_motif_sweep
from repro.motifs import Sweep3D
from repro.network.routing import RoutingMode


def test_parallel_and_serial_grids_identical():
    kwargs = dict(
        n_nodes=8,
        topologies=("dragonfly",),
        rates=("100Gbps",),
        routings=(RoutingMode.ADAPTIVE,),
        kb=2,
    )
    serial = run_motif_sweep(Sweep3D, jobs=1, **kwargs)
    parallel = run_motif_sweep(Sweep3D, jobs=2, **kwargs)
    assert len(serial) == len(parallel) == 1
    assert serial[0].rvma_ns == parallel[0].rvma_ns
    assert serial[0].rdma_ns == parallel[0].rdma_ns
