"""Integration: crash-restart recovery — checkpoint, rejoin, replay.

The acceptance matrix (motifs complete byte-identically after a mid-run
crash+restart, across seeds, with zero auditor violations), the full
producer/consumer crash→checkpoint→rejoin→replay cycle with every
handshake leg asserted, the regression guard that an amnesiac restart
*without* the recovery stack is not enough, the coordinated multi-epoch
rewind negotiation, and the ``--seed`` CLI plumbing used by CI to shard
the chaos matrix.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi, coordinated_rewind
from repro.experiments import cli
from repro.experiments.chaos import run_crash_restart, run_motif_under_chaos
from repro.faults import FaultInjector
from repro.nic.rvma import RvmaNicConfig
from repro.recovery import InvariantAuditor, RecoveryConfig, RecoveryManager
from repro.reliability import ReliabilityConfig

from tests.helpers import run_gens

SEEDS = (1, 2, 3)
MOTIFS = ("allreduce", "incast", "halo3d")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("motif", MOTIFS)
def test_motif_survives_crash_restart(motif, seed):
    """Acceptance: kill a node mid-run, restart it, and the motif still
    completes with results byte-identical to a fault-free run — with the
    invariant auditor watching every placement."""
    out = run_motif_under_chaos(motif, seed=seed, n_crashes=1)
    assert out.completed, f"{motif} crash-restart (seed {seed}): {out.error}"
    assert out.crash_restarts >= 1
    assert out.rejoins >= 1, "restarted node never completed its rejoin"
    assert out.replay_holes == 0, "journal retention too small for replay"
    assert out.identical_to_clean is True
    assert out.audit_violations == 0, out.audit_report
    assert out.gave_up == 0 and out.put_giveups == 0
    assert out.invariants_ok


def test_crash_without_recovery_stack_is_harmful():
    # Regression guard: the same crash schedule with recovery disabled
    # leaves the restarted node amnesiac (empty LUT, reset seqs that
    # peers treat as stale duplicates) and the motif cannot finish
    # exactly. Without this, the recovery stack could silently rot into
    # a no-op while the matrix above kept passing.
    out = run_motif_under_chaos(
        "incast", seed=1, n_crashes=1, recovery=False, compare_clean=False
    )
    assert not (out.completed and out.rejoins > 0)
    assert out.rejoins == 0


def _payload(step: int, size: int) -> bytes:
    return bytes((step * 37 + i) % 256 for i in range(size))


def _recovering_pair():
    rel = ReliabilityConfig(
        retransmit_timeout=8_000.0, max_backoff=50_000.0, max_retries=10
    )
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow",
        nic_config=RvmaNicConfig(reliability=rel),
    )
    aud = InvariantAuditor().attach(cl)
    mgr = RecoveryManager(
        cl, RecoveryConfig(checkpoint_interval_ns=5_000.0, horizon_ns=300_000.0)
    ).start()
    inj = FaultInjector(cl)
    mgr.arm(inj)
    return cl, aud, mgr, inj


def test_crash_restart_rejoin_cycle_end_to_end():
    """The full protocol walk: epochs land, the consumer crashes (NIC
    state destroyed), restarts from its last quiescent checkpoint, runs
    the rejoin handshake, peers replay the journal gap, and every
    remaining epoch arrives byte-identical — zero audit violations."""
    size = 2_048
    epochs = 6
    cl, aud, mgr, inj = _recovering_pair()
    inj.crash_restart(1, 23_000.0, 60_000.0)
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def producer():
        yield 2_000.0
        for step in range(epochs):
            op = yield from api0.put(1, 0x9, data=_payload(step, size))
            yield op.local_done
            yield 7_000.0

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=size)
        for _ in range(epochs):
            yield from api1.post_buffer(win, size=size)
        datas = []
        for _step in range(epochs):
            info = yield from api1.wait_completion(win)
            datas.append(info.read_data())
        return datas

    _, datas = run_gens(cl.sim, producer(), consumer())

    # Payload integrity across the crash: every epoch, exact bytes.
    assert [d == _payload(s, size) for s, d in enumerate(datas)] == [True] * epochs
    # The crash really destroyed and rebuilt state, not a soft blip.
    nic1 = cl.node(1).nic
    assert nic1.incarnation == 1 and not nic1.failed
    assert len(inj.log.crashes) == 1 and len(inj.log.restarts) == 1
    # Every leg of the handshake ran and the report says so.
    rep = mgr.report
    assert rep.complete
    assert len(rep.rejoins) == 1 and rep.rejoins[0].node == 1
    assert rep.rejoins[0].mailboxes_restored >= 1
    assert rep.rejoins[0].peers_greeted == 1
    assert len(rep.hellos_serviced) == 1 and len(rep.replies_consumed) == 1
    assert rep.replay_holes == []
    # The restart restored from a real checkpoint, not a cold LUT.
    assert mgr.agent(1).daemon.taken >= 1
    assert cl.node(1).nic.stat("mailboxes_restored").value >= 1
    # The auditor watched the whole run, replay included: clean.
    report = aud.report()
    assert report["ok"], report["violations"]
    assert report["checked"]["placements"] >= epochs


def test_checkpoint_deferred_stat_stays_quiescent_consistent():
    # Deferred checkpoints (non-quiescent pipeline at tick time) are
    # legal; what is not legal is finishing the run without any usable
    # checkpoint while epochs flowed.
    cl, _aud, mgr, inj = _recovering_pair()
    inj.crash_restart(1, 30_000.0, 65_000.0)
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    size = 1_024

    def producer():
        yield 2_000.0
        for step in range(4):
            op = yield from api0.put(1, 0x9, data=_payload(step, size))
            yield op.local_done
            yield 9_000.0

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=size)
        for _ in range(4):
            yield from api1.post_buffer(win, size=size)
        for _ in range(4):
            yield from api1.wait_completion(win)

    run_gens(cl.sim, producer(), consumer())
    daemon = mgr.agent(1).daemon
    assert daemon.taken >= 1
    assert daemon.latest is not None and 0x9 in daemon.latest.mailboxes


def test_coordinated_rewind_converges_on_min_epoch():
    """Peers that completed different epoch counts negotiate the highest
    epoch *everyone* completed and rewind to it together (§IV-F applied
    cluster-wide after a restart)."""
    size = 512
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="flow",
        nic_config=RvmaNicConfig(),
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def producer():
        yield 500.0
        for step in range(3):
            op = yield from api0.put(1, 0x9, data=_payload(step, size))
            yield op.local_done
            yield 2_000.0

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=size)
        for _ in range(4):
            yield from api1.post_buffer(win, size=size)
        for _ in range(3):
            yield from api1.wait_completion(win)
        # This node finished epochs 0..2; a peer only reached epoch 1.
        outcome = yield from coordinated_rewind(api1, win, peer_epochs=[1])
        return outcome

    _, outcome = run_gens(cl.sim, producer(), consumer())
    assert outcome.ok
    assert outcome.local_epoch == 2 and outcome.target_epoch == 1
    assert outcome.epochs_back == 1
    assert outcome.rewound is not None
    assert outcome.rewound.data == _payload(1, size)


def test_run_crash_restart_driver_aggregates():
    result = run_crash_restart(seeds=(1,), motifs=("incast",))
    assert result.name == "chaos-crash"
    assert len(result.rows) == 1
    assert result.summary["all_invariants_ok"] is True
    assert result.summary["total_audit_violations"] == 0


def test_cli_seed_flag_pins_chaos_matrix(monkeypatch, capsys):
    captured = {}

    def fake_runner(args):
        captured["seeds"] = cli._seeds_of(args)
        return run_crash_restart(seeds=(1,), motifs=("incast",), n_nodes=4)

    monkeypatch.setitem(cli.RUNNERS, "chaos-crash", fake_runner)
    assert cli.main(["chaos-crash", "--seed", "7"]) == 0
    assert captured["seeds"] == (7,)
    capsys.readouterr()
    monkeypatch.setitem(cli.RUNNERS, "chaos-crash", fake_runner)
    assert cli.main(["chaos-crash"]) == 0
    assert captured["seeds"] == (1, 2, 3)
