"""Fidelity cross-validation matrix (DESIGN.md §4 substitution check).

The flow model substitutes for packet-level simulation at scale; these
tests pin the two together across message sizes and a real motif, so
the substitution argument stays empirical, not asserted.
"""

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.motifs import Halo3D, RvmaProtocol
from repro.network import NetworkConfig, RoutingMode

from tests.helpers import run_gens


def _one_way(fidelity: str, size: int) -> float:
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity=fidelity,
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    t = {}

    def rx():
        win = yield from api1.init_window(0x1, epoch_threshold=size)
        yield from api1.post_buffer(win, size=size)
        yield from api1.wait_completion(win)
        t["lat"] = cl.sim.now - t["t0"]

    def tx():
        yield 1000.0
        t["t0"] = cl.sim.now
        yield from api0.put(1, 0x1, size=size)

    run_gens(cl.sim, rx(), tx())
    return t["lat"]


@pytest.mark.parametrize(
    ("size", "lo", "hi"),
    [
        # Small messages: serialization negligible, both models agree tightly.
        (64, 0.9, 1.1),
        # Around one MTU the models legitimately diverge the most: the
        # packet fabric store-and-forwards each (here: single) packet at
        # every hop plus a crossbar traversal, while the flow fabric is
        # pure cut-through.  Bounded, documented, and it washes out at
        # scale (below) where pipelining across fragments resumes.
        (4096, 0.55, 1.2),
        # Large messages: MTU pipelining restores agreement.
        (65536, 0.85, 1.15),
        (1 << 20, 0.95, 1.05),
    ],
)
def test_point_to_point_fidelity_agreement(size, lo, hi):
    flow = _one_way("flow", size)
    packet = _one_way("packet", size)
    ratio = flow / packet
    assert lo < ratio < hi, (size, flow, packet)


def test_motif_fidelity_agreement_small_scale():
    """An actual motif (8-rank halo) must land in the same regime at
    both fidelities — the justification for running Figs 7-8 in flow
    mode at 8,192 nodes."""
    elapsed = {}
    for fidelity in ("flow", "packet"):
        cl = Cluster.build(
            n_nodes=8, topology="dragonfly", nic_type="rvma", fidelity=fidelity,
            net_config=NetworkConfig(routing=RoutingMode.STATIC),
        )
        res = Halo3D(cl, RvmaProtocol(), iterations=3, msg_bytes=16384).run()
        elapsed[fidelity] = res.elapsed
    ratio = elapsed["flow"] / elapsed["packet"]
    assert 0.6 < ratio < 1.6, elapsed
