"""Every model-validation check must hold (recalibration guard)."""

from repro.timing.validation import report, validate


def test_all_validation_checks_pass():
    checks = validate()
    failed = [c for c in checks if not c.ok]
    assert not failed, "\n" + "\n".join(
        f"{c.name}: {c.measured:.1f} outside [{c.lo:.1f}, {c.hi:.1f}]" for c in failed
    )
    assert len(checks) >= 7


def test_report_renders_every_check():
    text = report()
    assert text.count("[ok ]") + text.count("[FAIL]") == len(validate())
