"""Integration: tree collectives and the MPI RMA veneer."""

import pytest

from repro.cluster import Cluster
from repro.mpi import MpiRma, RewindUnsupportedError, win_mailbox
from repro.motifs import RdmaProtocol, RvmaProtocol
from repro.collectives import TreeComm
from repro.sim import spawn


@pytest.fixture(autouse=True)
def _both_engine_modes(engine_mode):
    """Every collective/MPI test runs under both the fast and plain
    engines — tree fan-in/fan-out and fence ordering exercise batch
    scheduling, so identical results across modes is a real check."""


def _drive(cluster, rank_fn, n=None):
    n = n or cluster.n_nodes
    procs = [spawn(cluster.sim, rank_fn(r), f"r{r}") for r in range(n)]
    cluster.sim.run()
    stuck = [p.name for p in procs if not p.finished]
    assert not stuck, f"deadlocked ranks: {stuck}"
    return procs


# --- collectives --------------------------------------------------------------


@pytest.mark.parametrize("nic", ["rvma", "rdma"])
@pytest.mark.parametrize("n", [2, 5, 8])
def test_allreduce_sum_correct(nic, n):
    cl = Cluster.build(n_nodes=n, topology="dragonfly", nic_type=nic, fidelity="flow")
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    tc = TreeComm(cl, proto, vector_slots=3)
    results = {}

    def rank_proc(r):
        comm = yield from tc.setup(r)
        totals = yield from tc.allreduce_sum(comm, [r, 1, 2 * r])
        results[r] = totals

    _drive(cl, rank_proc)
    expect = [sum(range(n)), n, 2 * sum(range(n))]
    assert all(v == expect for v in results.values())


def test_barrier_orders_all_ranks():
    cl = Cluster.build(n_nodes=6, topology="dragonfly", nic_type="rvma", fidelity="flow")
    tc = TreeComm(cl, RvmaProtocol(), vector_slots=1)
    before, after = [], []

    def rank_proc(r):
        comm = yield from tc.setup(r)
        yield float(r * 500)  # stagger arrivals
        before.append((cl.sim.now, r))
        yield from tc.barrier(comm)
        after.append((cl.sim.now, r))

    _drive(cl, rank_proc)
    # No rank leaves the barrier before every rank entered it.
    last_entry = max(t for t, _ in before)
    assert all(t >= last_entry for t, _ in after)
    assert tc.barriers_done == 6


def test_broadcast_from_root():
    cl = Cluster.build(n_nodes=7, topology="fattree", nic_type="rvma", fidelity="flow")
    tc = TreeComm(cl, RvmaProtocol(), vector_slots=2)
    results = {}

    def rank_proc(r):
        comm = yield from tc.setup(r)
        values = yield from tc.broadcast(comm, [123, 456] if r == 0 else None, 2)
        results[r] = values

    _drive(cl, rank_proc)
    assert all(v == [123, 456] for v in results.values())


def test_allreduce_vector_capacity_enforced():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    tc = TreeComm(cl, RvmaProtocol(), vector_slots=2)

    def rank_proc(r):
        comm = yield from tc.setup(r)
        yield from tc.allreduce_sum(comm, [1, 2, 3])  # too wide

    with pytest.raises(ValueError):
        _drive(cl, rank_proc)


# --- MPI RMA veneer --------------------------------------------------------------


@pytest.mark.parametrize("nic", ["rvma", "rdma"])
def test_mpi_put_fence_get_roundtrip(nic):
    n = 4
    cl = Cluster.build(n_nodes=n, topology="star", nic_type=nic, fidelity="flow")
    rma = MpiRma(cl, ring_depth=3)
    results = {}

    def rank_proc(r):
        win = yield from rma.win_allocate(r, size=128, win_id=1)
        right = (r + 1) % n
        yield from win.put(right, data=bytes([0x40 + r]) * 16, disp=16 * r)
        epoch = yield from win.fence()
        left = (r - 1) % n
        results[r] = (epoch, win.read(16 * left, 16))
        fetched = yield from win.get(right, 16, disp=16 * r)
        yield from win.fence()
        results[r] += (fetched,)

    _drive(cl, rank_proc)
    for r in range(n):
        epoch, local, fetched = results[r]
        assert epoch == 1
        assert local == bytes([0x40 + (r - 1) % n]) * 16
        assert fetched == bytes([0x40 + r]) * 16  # our own earlier put


def test_mpi_window_contents_persist_across_fences():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    rma = MpiRma(cl, ring_depth=3)
    results = {}

    def rank_proc(r):
        win = yield from rma.win_allocate(r, size=64, win_id=2)
        if r == 0:
            yield from win.put(1, data=b"A" * 8, disp=0)
        yield from win.fence()
        if r == 0:
            yield from win.put(1, data=b"B" * 8, disp=8)
        yield from win.fence()
        yield from win.fence()  # an empty epoch must also be harmless
        results[r] = win.read(0, 16)

    _drive(cl, rank_proc)
    # Both epochs' writes coexist: copy-forward preserved epoch 0 data.
    assert results[1] == b"A" * 8 + b"B" * 8


def test_mpix_rewind_restores_previous_epoch():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    rma = MpiRma(cl, ring_depth=4)
    results = {}

    def rank_proc(r):
        win = yield from rma.win_allocate(r, size=32, win_id=3)
        for step, byte in enumerate((b"1", b"2", b"3")):
            if r == 0:
                yield from win.put(1, data=byte * 32, disp=0)
            yield from win.fence()
        if r == 1:
            assert win.read(0, 4) == b"3333"
            restored = yield from win.rewind(1)  # back to the "2" epoch
            results["epoch"] = restored
            results["data"] = win.read(0, 4)
        yield from rma.comm.barrier(win.comm)

    _drive(cl, rank_proc)
    assert results["data"] == b"2222"


def test_mpix_rewind_unsupported_on_rdma():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rdma", fidelity="flow")
    rma = MpiRma(cl, ring_depth=3)
    failures = []

    def rank_proc(r):
        win = yield from rma.win_allocate(r, size=32, win_id=4)
        yield from win.fence()
        if r == 0:
            try:
                yield from win.rewind(1)
            except RewindUnsupportedError as exc:
                failures.append(str(exc))
        yield from rma.comm.barrier(win.comm)

    _drive(cl, rank_proc)
    assert failures and "overwritten" in failures[0]


def test_mpi_rvma_needs_no_address_exchange_and_is_faster_to_allocate():
    times = {}
    for nic in ("rvma", "rdma"):
        cl = Cluster.build(n_nodes=8, topology="dragonfly", nic_type=nic, fidelity="flow")
        rma = MpiRma(cl)

        def rank_proc(r):
            yield from rma.win_allocate(r, size=4096, win_id=5)

        _drive(cl, rank_proc)
        times[nic] = cl.sim.now
    # RDMA pays registration + the (addr,len,rkey) allgather on top of
    # the same tree synchronization.
    assert times["rdma"] > times["rvma"]


def test_mpi_put_bounds_and_freed_window():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    rma = MpiRma(cl)
    errors = []

    def rank_proc(r):
        win = yield from rma.win_allocate(r, size=32, win_id=6)
        if r == 0:
            try:
                yield from win.put(1, data=b"x" * 40, disp=0)
            except ValueError as exc:
                errors.append("bounds")
        yield from win.fence()
        yield from win.free()
        if r == 0:
            try:
                yield from win.put(1, data=b"x", disp=0)
            except RuntimeError:
                errors.append("freed")

    _drive(cl, rank_proc)
    assert errors == ["bounds", "freed"]


def test_win_mailbox_distinct_per_rank_and_window():
    boxes = {win_mailbox(r, w) for r in range(16) for w in range(8)}
    assert len(boxes) == 16 * 8


def test_mpi_rma_validates_ring_depth():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    with pytest.raises(ValueError):
        MpiRma(cl, ring_depth=1)


def test_two_windows_coexist_independently():
    """Two MPI windows on the same ranks are fully isolated (win_id
    namespaces the mailboxes)."""
    from repro.mpi import RankWindow

    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="flow")
    rma = MpiRma(cl, ring_depth=3)
    results = {}

    def rank_proc(r):
        win_a = yield from rma.win_allocate(r, size=32, win_id=10)
        # Second window: fresh collective channels come from the same comm.
        win_b = RankWindow(rma, r, 32, 11, win_a.comm)
        yield from win_b._allocate()
        if r == 0:
            yield from win_a.put(1, data=b"A" * 8, disp=0)
            yield from win_b.put(1, data=b"B" * 8, disp=8)
        yield from win_a.fence()
        yield from win_b.fence()
        if r == 1:
            results["a"] = win_a.read(0, 8)
            results["b"] = win_b.read(8, 8)
            results["a_clean"] = win_a.read(8, 8)

    from repro.mpi import RankWindow

    procs = [spawn(cl.sim, rank_proc(r), f"w{r}") for r in range(2)]
    cl.sim.run()
    assert all(p.finished for p in procs)
    assert results["a"] == b"A" * 8
    assert results["b"] == b"B" * 8
    assert results["a_clean"] == b"\x00" * 8  # window A untouched at disp 8
