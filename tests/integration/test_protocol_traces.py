"""Trace-level protocol verification.

Uses the simulator's tracer to assert *orderings* inside the protocols
— the causality claims behind the figures, not just end states.
"""

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.memory.buffer import HostBuffer
from repro.network import NetworkConfig, RoutingMode
from repro.rdma import CompletionMode, VerbsEndpoint, client_request_region, server_serve_region
from repro.sim import Simulator

from tests.helpers import run_gens


def _traced_cluster(nic):
    sim = Simulator(seed=3, trace=True)
    return Cluster.build(
        n_nodes=2, topology="star", nic_type=nic, fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE), sim=sim,
    )


def test_rvma_completion_written_after_all_placements():
    cl = _traced_cluster("rvma")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    size = 4096 * 3  # several packets

    def receiver():
        win = yield from api1.init_window(0x1, epoch_threshold=size)
        yield from api1.post_buffer(win, size=size)
        yield from api1.wait_completion(win)

    def sender():
        yield 1000.0
        op = yield from api0.put(1, 0x1, size=size)
        yield op.local_done

    run_gens(cl.sim, receiver(), sender())
    placements = cl.sim.tracer.filter("rvma1", "put_placed")
    completion = cl.sim.tracer.filter("rvma1", "completion_written")
    assert len(placements) == 3 and len(completion) == 1
    # The NIC never signals the host before the last byte is placed.
    assert completion[0].time >= max(e.time for e in placements)
    assert sum(e.fields["n"] for e in placements) == size


def test_rdma_signal_send_posted_after_write_ack():
    """The fence the paper describes: under adaptive routing, the
    initiator may only issue the completion send after the transport
    acked the write."""
    cl = _traced_cluster("rdma")
    v0, v1 = VerbsEndpoint(cl.node(0)), VerbsEndpoint(cl.node(1))

    def server():
        landing, _ = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cl.node(1).memory, 64)
        yield from v1.post_recv(ctl, wr_id=5, tag=5)
        yield from v1.wait_write_completion(
            landing, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE, ctl, wr_id=5
        )

    def client():
        hs = yield from client_request_region(v0, server=1, size=8192)
        yield from v0.write_with_completion(1, hs.region, 8192, wr_id=5)

    run_gens(cl.sim, server(), client())
    ack = cl.sim.tracer.filter("rdma1", "ack_sent")
    # The data write's ack (the handshake also acks; take the last one).
    t_ack = max(e.time for e in ack)
    signals = [
        e for e in cl.sim.tracer.filter("rdma0", "send_posted")
        if e.fields.get("size") == 1
    ]
    assert signals, "completion signal send was never posted"
    assert signals[0].time > t_ack


def test_tracer_disabled_by_default_keeps_runs_clean():
    cl = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="packet")
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def receiver():
        win = yield from api1.init_window(0x2, epoch_threshold=8)
        yield from api1.post_buffer(win, size=8)
        yield from api1.wait_completion(win)

    def sender():
        yield 1000.0
        yield from api0.put(1, 0x2, size=8)

    run_gens(cl.sim, receiver(), sender())
    assert len(cl.sim.tracer) == 0
