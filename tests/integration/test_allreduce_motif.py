"""Integration: the allreduce extension motif."""

import pytest

from repro.cluster import Cluster
from repro.motifs import AllreduceMotif, RdmaProtocol, RvmaProtocol


def _run(nic, n=16, **kw):
    cl = Cluster.build(n_nodes=n, topology="dragonfly", nic_type=nic, fidelity="flow")
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    motif = AllreduceMotif(cl, proto, **kw)
    result = motif.run()
    return motif, result


@pytest.mark.parametrize("nic", ["rvma", "rdma"])
def test_allreduce_converges_identically_on_all_ranks(nic):
    motif, result = _run(nic, iterations=3)
    assert motif.verify()
    assert result.messages == 16 * 3  # one counted send per rank per iter


def test_allreduce_rvma_speedup_between_halo_and_sweep():
    _, rvma = _run("rvma", iterations=5)
    _, rdma = _run("rdma", iterations=5)
    speedup = rdma.elapsed / rvma.elapsed
    # Latency-bound tree exchanges: between Halo3D-like (~1.6x) and
    # Sweep3D-like (~4.5x) gains.
    assert 1.8 < speedup < 5.0, speedup


def test_allreduce_scales_with_iterations():
    _, r3 = _run("rvma", iterations=3)
    _, r9 = _run("rvma", iterations=9)
    assert r9.elapsed > 2.0 * r3.elapsed
