"""Integration: receiver-managed (sockets) mode under faults.

The §IV-B middleware appends into MANAGED windows, so stream integrity
depends on the transport's in-order dispatch: a dropped chunk must not
let later chunks append first. Two scenarios: sustained message loss,
and a full server crash-restart mid-stream with checkpoint/rejoin
recovery underneath — both must deliver the exact byte stream.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.faults import FaultInjector
from repro.network import NetworkConfig, RoutingMode
from repro.nic.rvma import RvmaNicConfig
from repro.recovery import InvariantAuditor, RecoveryConfig, RecoveryManager
from repro.reliability import ReliabilityConfig
from repro.sim import spawn
from repro.sockets import RvmaListener, connect


def _cluster():
    rel = ReliabilityConfig(
        retransmit_timeout=8_000.0, max_backoff=50_000.0, max_retries=10
    )
    return Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
        nic_config=RvmaNicConfig(reliability=rel),
    )


def _drive(cl, *gens):
    procs = [spawn(cl.sim, g, f"p{i}") for i, g in enumerate(gens)]
    cl.sim.run()
    stuck = [p.name for p in procs if not p.finished]
    assert not stuck, f"deadlocked: {stuck}"
    return [p.result for p in procs]


def _stream_payload(n: int) -> bytes:
    return bytes((i * 131 + 7) % 256 for i in range(n))


def test_stream_exact_under_sustained_drops():
    """15% uniform loss on a chunked stream: retransmission plus ordered
    MANAGED dispatch must reassemble the exact byte sequence — a chunk
    arriving out of order would append at the wrong stream offset."""
    cl = _cluster()
    payload = _stream_payload(2_048)  # 64 chunks of 32 B
    inj = FaultInjector(cl)
    inj.drop_messages(probability=0.15)
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        # Depth sized to the client's burst (the sockets layer's TCP-like
        # contract: senders must not outrun the advertised capacity).
        listener = yield from RvmaListener(
            srv_api, port=17, chunk_size=32, depth=len(payload) // 32
        ).listen()
        conn = yield from listener.accept()
        data = yield from conn.recv(len(payload))
        return data

    def client():
        yield 1_000.0
        conn = yield from connect(cli_api, 0, port=17, chunk_size=32)
        # Ragged sends so chunk boundaries never line up with messages.
        step = 77
        for off in range(0, len(payload), step):
            yield from conn.send(payload[off:off + step])

    data, _ = _drive(cl, server(), client())
    assert data == payload
    assert cl.sim.stats.counter("reliability.rel_retransmits").value > 0
    assert cl.sim.stats.counter("reliability.rel_gave_up").value == 0


def test_stream_survives_server_crash_restart():
    """The server NIC crashes mid-stream (LUT, transport, flow state all
    destroyed), restarts from its checkpoint, rejoins, and the client's
    journaled chunks replay — the application-level stream comes out
    byte-identical with zero auditor violations."""
    cl = _cluster()
    aud = InvariantAuditor().attach(cl)
    mgr = RecoveryManager(
        cl, RecoveryConfig(checkpoint_interval_ns=5_000.0, horizon_ns=400_000.0)
    ).start()
    inj = FaultInjector(cl)
    mgr.arm(inj)
    inj.crash_restart(0, 40_000.0, 80_000.0)

    payload = _stream_payload(4_096)  # 64 chunks of 64 B
    srv_api, cli_api = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))

    def server():
        listener = yield from RvmaListener(srv_api, port=19, chunk_size=64).listen()
        conn = yield from listener.accept()
        data = yield from conn.recv(len(payload))
        return data

    def client():
        yield 1_000.0
        conn = yield from connect(cli_api, 0, port=19, chunk_size=64)
        # Pace the stream so the crash window lands mid-transfer, with
        # chunks sent both before the crash and during the outage.
        for off in range(0, len(payload), 256):
            yield from conn.send(payload[off:off + 256])
            yield 4_000.0

    data, _ = _drive(cl, server(), client())
    assert data == payload
    nic0 = cl.node(0).nic
    assert nic0.incarnation == 1 and not nic0.failed
    rep = mgr.report
    assert rep.complete
    assert len(rep.rejoins) == 1 and rep.rejoins[0].node == 0
    assert rep.rejoins[0].mailboxes_restored >= 1
    assert rep.replay_holes == []
    report = aud.report()
    assert report["ok"], report["violations"]
    assert cl.sim.stats.counter("reliability.rel_gave_up").value == 0
