"""Integration: scenario runner replay determinism and the auto-shrinker.

The ISSUE's acceptance criteria live here: replaying one scenario twice
produces byte-identical (wall-clock-scrubbed) RunReport JSON, and
shrinking a seeded known-bad scenario yields a strictly smaller document
that reproduces the identical failure fingerprint.
"""

from __future__ import annotations

import pytest

from repro.scenarios import ShrinkError, generate, run_scenario, shrink
from repro.scenarios.cli import fuzz_main

#: A differential scenario (small star cluster, no faults): the cheapest
#: full oracle path, and it carries a RunReport for the replay check.
PASSING_SEED = 1
#: Seeds a known-bad motif (reliability disarmed, hard loss): must fail.
KNOWN_BAD_SEED = 7


def test_replay_twice_is_bit_identical():
    scenario = generate(PASSING_SEED)
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.failed == second.failed
    assert first.fingerprint == second.fingerprint
    assert first.report_json() is not None
    assert first.report_json() == second.report_json()


def test_seed_alone_reconstructs_the_same_run():
    # The generator is the only master-seed consumer: document-from-seed
    # equals document-from-file, so `fuzz replay <seed>` is exact.
    assert generate(PASSING_SEED) == generate(PASSING_SEED)
    out = run_scenario(generate(PASSING_SEED))
    assert not out.failed
    assert not out.fingerprint
    report = out.report_dict()
    assert report["meta"]["scenario_id"] == generate(PASSING_SEED).scenario_id
    assert report["metrics"]["scenario"]["scenario.runs"] == 1


def test_known_bad_scenario_fails_with_a_stable_fingerprint():
    scenario = generate(KNOWN_BAD_SEED, known_bad=True)
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.failed and second.failed
    assert first.fingerprint == second.fingerprint
    assert first.fingerprint.components  # non-empty, coarse components
    for component in first.fingerprint.components:
        prefix = component.split(":", 1)[0]
        assert prefix in ("exception", "invariant", "audit", "kv", "diff", "stall")


def test_shrink_minimizes_while_preserving_the_fingerprint():
    scenario = generate(KNOWN_BAD_SEED, known_bad=True)
    base = run_scenario(scenario)
    result = shrink(scenario, expect=base.fingerprint, max_attempts=80)
    assert result.reduced
    assert result.shrunk.size() < scenario.size()
    assert result.fingerprint == base.fingerprint
    # The minimized document still reproduces the identical failure.
    replay = run_scenario(result.shrunk)
    assert replay.failed
    assert replay.fingerprint == base.fingerprint
    # And it is a valid, self-contained document in its own right.
    result.shrunk.validate()


def test_shrink_refuses_a_passing_scenario():
    with pytest.raises(ShrinkError, match="passes"):
        shrink(generate(PASSING_SEED))


def test_fuzz_cli_replay_writes_deterministic_reports(tmp_path):
    scenario = generate(PASSING_SEED)
    path = scenario.save(str(tmp_path / "scenario.json"))
    rep_a, rep_b = tmp_path / "a.json", tmp_path / "b.json"
    assert fuzz_main(["replay", path, "--report-out", str(rep_a)]) == 0
    assert fuzz_main(["replay", path, "--report-out", str(rep_b)]) == 0
    assert rep_a.read_bytes() == rep_b.read_bytes()
    # Replaying from the bare seed hits the same document.
    assert fuzz_main(["replay", str(PASSING_SEED)]) == 0


def test_fuzz_cli_campaign_saves_and_shrinks_failures(tmp_path):
    fail_dir = tmp_path / "failures"
    report = tmp_path / "campaign.json"
    rc = fuzz_main(
        [
            "run",
            "--seed-start", str(KNOWN_BAD_SEED),
            "--count", "1",
            "--known-bad",
            "--shrink",
            "--fail-dir", str(fail_dir),
            "--report-out", str(report),
        ]
    )
    assert rc == 0  # --known-bad campaigns exercise failures by design
    saved = sorted(p.name for p in fail_dir.glob("*.json"))
    assert any(name.endswith("-shrunk.json") for name in saved)
    assert any(not name.endswith("-shrunk.json") for name in saved)
