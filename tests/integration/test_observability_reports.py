"""Integration: observability reports out of the chaos harness and API.

The acceptance bar for the observability layer: a chaos-crash run with
``observe=True, trace=True`` must yield a RunReport carrying the
nic/transport/recovery/fabric metric groups and at least three span
categories, with every reported metric declared in the catalog.
"""

import json

from repro.cluster import Cluster
from repro.core import RvmaApi
from repro.experiments.chaos import run_motif_under_chaos
from repro.nic.rvma import RvmaNicConfig
from repro.reliability import ReliabilityConfig

from tests.helpers import run_gens


def test_chaos_crash_report_covers_all_layers():
    out = run_motif_under_chaos(
        "allreduce", seed=1, n_crashes=1, observe=True, trace=True,
        compare_clean=False,
    )
    rep = out.run_report
    assert rep is not None
    groups = set(rep.groups())
    assert {"nic", "transport", "recovery", "fabric"} <= groups
    assert len(rep.span_categories) >= 3
    assert rep.undocumented() == []
    # the crash actually shows up in the numbers
    assert rep.metrics["faults"]["faults.crashes"] == 1
    assert rep.metrics["recovery"]["recovery.restarts"] == 1
    # spans carry sim-time: the whole-run span is the longest
    assert rep.hottest_sim[0]["category"] == "run"
    # JSON round-trips
    assert json.loads(rep.to_json())["metrics"]["nic"]
    md = rep.to_markdown()
    assert "transport.retransmits" in md


def test_chaos_without_observe_returns_no_report():
    out = run_motif_under_chaos("allreduce", seed=1, compare_clean=False)
    assert out.run_report is None


def test_api_metrics_and_trace_spans():
    cfg = RvmaNicConfig(reliability=ReliabilityConfig())
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", nic_config=cfg
    )
    cluster.sim.spans.enable("api", "fabric")
    sender, receiver = RvmaApi(cluster.node(0)), RvmaApi(cluster.node(1))

    def rx():
        win = yield from receiver.init_window(0xC0DE, epoch_threshold=64)
        yield from receiver.post_buffer(win, size=64)
        yield from receiver.wait_completion(win)

    def tx():
        yield 100.0
        op = yield from sender.put(1, 0xC0DE, data=b"x" * 64)
        yield op.local_done

    run_gens(cluster.sim, rx(), tx())

    flat = sender.metrics("nic")
    assert flat["nic.rvma.bytes_placed"] == 64
    reg = sender.metrics()
    assert "fabric" in reg.groups() and "nic" in reg.groups()

    api_spans = sender.trace_spans("api")
    assert {s.name for s in api_spans} == {"put", "wait_completion"}
    assert all(not s.open for s in api_spans)
    flights = sender.trace_spans("fabric")
    assert flights and all(s.sim_time > 0 for s in flights)
