"""Integration tests: multi-tenant QoS end to end (ISSUE PR 7 tentpole).

Each enforcement point is exercised over real RVMA mailboxes — the
token-bucket admitter (RC_OVERLOAD replies), the NIC placement quota
(reject-into-counter, no transport stall), client deadlines (no op
stalls forever even against a drowning server), the open-loop backlog
cap, and the noisy-neighbor experiment's invariants.
"""

from repro.cluster import Cluster
from repro.core.api import RvmaApi
from repro.experiments.qos_noisy import run_noisy_neighbor
from repro.nic.rvma import RvmaNicConfig
from repro.observability import MetricsRegistry
from repro.services import (
    ClientRobustnessConfig,
    KvClient,
    KvServer,
    KvServerConfig,
    LoadGenerator,
    QosConfig,
    ShardMap,
    TenantDirectory,
    TenantSpec,
    WorkloadConfig,
    install_placement_quota,
)
from repro.services.kv import REPLY_MAILBOX_BASE, REQUEST_MAILBOX_BASE
from repro.services.wire import (
    OP_PUT,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_OK,
    STATUS_OVERLOAD,
)
from repro.sim.process import spawn


def _qos_cluster(tenants, n_nodes=2, server_config=None, qos=True):
    from repro.experiments.chaos import CHAOS_RELIABILITY

    cluster = Cluster.build(
        n_nodes=n_nodes, topology="star", nic_type="rvma", fidelity="flow",
        seed=11, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    shard_map = ShardMap([0], shards_per_node=2)
    server = KvServer(
        cluster.nodes[0],
        shard_map,
        config=server_config,
        qos=QosConfig() if qos else None,
        tenants=tenants if qos else None,
    ).start()
    return cluster, shard_map, server


def test_admission_sheds_storm_with_rc_overload(engine_mode):
    """A metered tenant's burst past its bucket resolves as RC_OVERLOAD."""
    tenants = TenantDirectory(
        (TenantSpec(1, admit_rate_bytes_per_us=1.0, admit_burst_bytes=512.0),)
    )
    tenants.assign_node(1, 1)
    cluster, shard_map, server = _qos_cluster(tenants)
    client = KvClient(
        RvmaApi(cluster.nodes[1]), shard_map, index=0, tenant_id=1,
        robustness=ClientRobustnessConfig(),
    )
    statuses = []

    def driver():
        yield from client.open()
        ops = [(OP_PUT, b"k%02d" % i, b"x" * 64) for i in range(24)]
        replies = yield from client.execute_batch(ops, deadline_ns=2_000_000.0)
        statuses.extend(r.status for r in replies)
        server.stop()

    proc = spawn(cluster.sim, driver(), "storm")
    cluster.sim.run(until=20_000_000.0)
    assert proc.finished
    assert statuses.count(STATUS_OK) > 0          # the burst allowance
    assert statuses.count(STATUS_OVERLOAD) > 0    # the excess, shed
    assert len(statuses) == 24                    # every op resolved
    counters = cluster.sim.stats.counters()
    assert counters["service.kv.overload_replies"] == statuses.count(STATUS_OVERLOAD)
    assert counters["service.kv.tenant.shed.t1"] == statuses.count(STATUS_OVERLOAD)
    assert MetricsRegistry.collect(cluster.sim).undocumented() == []


def test_deadline_resolves_against_a_drowning_server(engine_mode):
    """Requests to a server busy for longer than the deadline resolve
    client-side as DEADLINE_EXCEEDED — no op stalls forever."""
    tenants = TenantDirectory((TenantSpec(1),))
    tenants.assign_node(1, 1)
    cluster, shard_map, server = _qos_cluster(
        tenants,
        server_config=KvServerConfig(service_ns_per_request=5_000_000.0),
    )
    client = KvClient(
        RvmaApi(cluster.nodes[1]), shard_map, index=0, tenant_id=1,
        robustness=ClientRobustnessConfig(request_timeout_ns=50_000.0),
    )
    statuses = []

    def driver():
        yield from client.open()
        for i in range(3):
            replies = yield from client.execute_batch(
                [(OP_PUT, b"slow%d" % i, b"v")], deadline_ns=400_000.0
            )
            statuses.append(replies[0].status)

    proc = spawn(cluster.sim, driver(), "deadline")
    cluster.sim.run(until=4_000_000.0)
    assert proc.finished, "deadline-armed client must never stall"
    assert statuses == [STATUS_DEADLINE_EXCEEDED] * 3
    counters = cluster.sim.stats.counters()
    assert counters["service.kv.client.timeouts"] > 0
    assert counters["service.kv.client.retries"] > 0
    assert counters["service.kv.tenant.deadline_misses.t1"] == 3


def test_nic_quota_rejects_into_counter_without_transport_stall(engine_mode):
    """Placement-quota rejects are terminal and accounted: every lost put
    is a quota loss, and the retry-less client resolves by deadline."""
    tenants = TenantDirectory(
        (TenantSpec(1, nic_quota_bytes_per_us=1.0, nic_quota_burst_bytes=400.0),)
    )
    tenants.assign_node(1, 1)
    cluster, shard_map, server = _qos_cluster(tenants)
    install_placement_quota(
        cluster.nodes[0], tenants,
        mailbox_lo=REQUEST_MAILBOX_BASE, mailbox_hi=REPLY_MAILBOX_BASE,
    )
    client = KvClient(
        RvmaApi(cluster.nodes[1]), shard_map, index=0, tenant_id=1,
        robustness=ClientRobustnessConfig(max_retries=0),
    )
    statuses = []

    def driver():
        yield from client.open()
        for i in range(12):
            replies = yield from client.execute_batch(
                [(OP_PUT, b"q%02d" % i, b"y" * 64)], deadline_ns=400_000.0
            )
            statuses.append(replies[0].status)
        yield 100_000.0  # let any late NACK accounting land
        server.stop()

    proc = spawn(cluster.sim, driver(), "quota")
    cluster.sim.run(until=30_000_000.0)
    assert proc.finished
    assert statuses.count(STATUS_OK) > 0
    assert statuses.count(STATUS_DEADLINE_EXCEEDED) > 0
    reg = MetricsRegistry.collect(cluster.sim)
    assert reg.counters["service.kv.tenant.quota_rejects.t1"] > 0
    assert reg.counters["nic.rvma.quota_rejects"] > 0
    # Reject-into-counter, not data loss: every lost put is a quota loss.
    assert reg.counters["nic.rvma.puts_lost"] == reg.counters["nic.rvma.puts_lost_quota"]
    assert reg.undocumented() == []


def test_open_loop_backlog_cap_sheds_and_counts(engine_mode):
    """Offered load past the backlog cap is dropped at the generator —
    counted, resolved, and bounded instead of queueing without limit."""
    tenants = TenantDirectory((TenantSpec(1),))
    tenants.assign_node(1, 1)
    cluster, shard_map, server = _qos_cluster(
        tenants,
        server_config=KvServerConfig(service_ns_per_request=20_000.0),
        qos=False,
    )
    client = KvClient(RvmaApi(cluster.nodes[1]), shard_map, index=0)
    gen = LoadGenerator(
        cluster.sim,
        [client],
        WorkloadConfig(
            n_ops=120, n_keys=16, mode="open",
            mean_interarrival_ns=200.0, max_backlog=8,
        ),
    )
    out = {}

    def driver():
        yield from client.open()
        out["stats"] = yield from gen.run()
        server.stop()

    proc = spawn(cluster.sim, driver(), "openloop")
    cluster.sim.run(until=80_000_000.0)
    assert proc.finished
    stats = out["stats"]
    assert stats.ops_dropped > 0
    assert stats.all_resolved()
    counters = cluster.sim.stats.counters()
    assert counters["service.kv.client.backlog_dropped"] == stats.ops_dropped


def test_noisy_neighbor_experiment_isolates_victim(engine_mode):
    """Downsized noisy-neighbor cell: with QoS armed, invariants hold,
    every op resolves, and the QoS mechanisms actually engaged."""
    outcome = run_noisy_neighbor(
        seed=1, qos=True, victim_ops=80, aggressor_ops=320, aggressor_batch=4
    )
    assert outcome.completed and outcome.error is None
    assert outcome.resolved
    assert outcome.invariants_ok
    assert outcome.overload_replies > 0 or outcome.quota_rejects > 0
    assert outcome.victim_deadline_misses == 0
