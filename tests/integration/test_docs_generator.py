"""The API-docs generator must run clean and cover the public surface."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]


def test_gen_api_docs_runs_and_covers_packages(tmp_path):
    out = ROOT / "docs" / "API.md"
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    for anchor in (
        "## `repro.sim.engine`",
        "## `repro.nic.rvma`",
        "## `repro.core.api`",
        "## `repro.mpi.rma`",
        "#### `RvmaNic`",
        "#### `Simulator`",
    ):
        assert anchor in text, f"missing {anchor}"
    # The generated reference is substantial, not a stub.
    assert text.count("####") > 100


def test_render_figures_tool_fast_subset(tmp_path, monkeypatch):
    """The figure renderer produces valid SVG files (fast figures only)."""
    import xml.etree.ElementTree as ET

    from repro.experiments import run_fig4
    from repro.experiments.svgcharts import svg_for_result

    svg = svg_for_result(run_fig4(sizes=[2, 1024], iterations=3))
    ET.fromstring(svg)
    out = tmp_path / "fig4.svg"
    out.write_text(svg)
    assert out.stat().st_size > 1000
