"""Integration: chaos harness — motifs under composed fault schedules.

Fixed-seed matrix of the :mod:`repro.experiments.chaos` harness, the
invariants the reliability layer guarantees, the regression guard that
the injected faults are genuinely harmful without it, and the
acceptance scenario: a node killed mid-epoch is reported by the failure
detector within the suspicion timeout and recovered automatically with
``mpix_rewind``.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import RvmaApi, recover_on_failure
from repro.experiments.chaos import CHAOS_RELIABILITY, run_chaos, run_motif_under_chaos
from repro.faults import FaultInjector
from repro.nic.rvma import RvmaNicConfig
from repro.reliability import ReliabilityConfig

from tests.helpers import run_gens

SEEDS = (1, 2, 3)
MOTIFS = ("allreduce", "incast", "halo3d")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("motif", MOTIFS)
def test_motif_survives_chaos_schedule(motif, seed):
    out = run_motif_under_chaos(motif, seed=seed, drop_prob=0.1)
    assert out.completed, f"{motif} under chaos (seed {seed}): {out.error}"
    # No message abandoned: every loss recovered within the retry budget.
    assert out.gave_up == 0
    # Exactness: application results byte/count-identical to a clean run.
    assert out.identical_to_clean is True
    # Bounded recovery: retransmissions proportionate to actual losses,
    # not a runaway storm (each drop costs at most a few timeouts).
    assert out.retransmits <= 3 * out.deliveries_dropped + 20
    assert out.invariants_ok


@pytest.mark.parametrize("motif", ("allreduce", "incast"))
def test_same_faults_without_reliability_demonstrably_fail(motif):
    # The acceptance regression guard: an identical schedule plus 20%
    # uniform loss stalls the unprotected NICs (lost puts never placed,
    # EPOCH_BYTES never reached, ranks deadlock).
    out = run_motif_under_chaos(
        motif, seed=1, reliability=False, drop_prob=0.2, compare_clean=False
    )
    assert not out.completed
    assert "deadlock" in out.error


def test_chaos_driver_aggregates_invariants():
    result = run_chaos(seeds=(1,), motifs=("incast",))
    assert result.name == "chaos"
    assert len(result.rows) == 1
    assert result.summary["all_invariants_ok"] is True


def _payload(step: int, size: int) -> bytes:
    return bytes((step * 41 + i) % 256 for i in range(size))


def test_failure_detector_triggers_automatic_rewind():
    """Node killed mid-epoch: detected within the suspicion timeout and
    recovered via the automatic §IV-F rewind path (no fixed sleeps)."""
    size = 4_096
    cfg = ReliabilityConfig(
        retransmit_timeout=5_000.0,
        heartbeat_interval=10_000.0,
        min_suspicion_timeout=60_000.0,
    )
    cl = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        nic_config=RvmaNicConfig(reliability=cfg),
    )
    api0, api1 = RvmaApi(cl.node(0)), RvmaApi(cl.node(1))
    inj = FaultInjector(cl)

    def producer():
        yield 2_000.0
        for step in range(2):
            op = yield from api0.put(1, 0x9, data=_payload(step, size))
            yield op.local_done
            yield 5_000.0
        # Third epoch: half the bytes go out, then the node dies.
        half = _payload(2, size)[: size // 2]
        op = yield from api0.put(1, 0x9, data=half, size=len(half))
        yield op.local_done
        inj.fail_node_at(0, cl.sim.now + 1.0)

    def consumer():
        win = yield from api1.init_window(0x9, epoch_threshold=size)
        for _ in range(4):
            yield from api1.post_buffer(win, size=size)
        for step in range(2):
            info = yield from api1.wait_completion(win)
            assert info.read_data() == _payload(step, size)
        # Not a timeout-and-hope sleep: the failure detector watches the
        # producer and recovery runs the moment suspicion fires.
        recovery = yield from recover_on_failure(api1, win, peer=0)
        return recovery

    _, recovery = run_gens(cl.sim, producer(), consumer())

    assert recovery.failure.peer == 0
    (_, t_kill), = inj.log.node_failures
    detection_latency = recovery.failure.time - t_kill
    assert 0 < detection_latency <= cfg.min_suspicion_timeout + 2 * cfg.heartbeat_interval
    # Two epochs completed in hardware; the in-progress third is garbage.
    assert recovery.consistent_epoch == 1
    assert recovery.rewound is not None
    assert recovery.rewound.data == _payload(1, size)
    assert recovery.recovery_ns >= 0.0
    assert cl.sim.stats.counter("reliability.peers_suspected").value == 1


def test_chaos_reliability_budget_covers_generated_windows():
    # The harness config must out-wait the longest window ChaosSchedule
    # can generate, or give-ups under chaos would be schedule luck.
    cfg = CHAOS_RELIABILITY
    total, timeout = 0.0, cfg.retransmit_timeout
    for _ in range(cfg.max_retries):
        total += timeout
        timeout = min(timeout * cfg.backoff_factor, cfg.max_backoff)
    from repro.experiments.chaos import DEFAULT_MAX_WINDOW_NS

    assert total > DEFAULT_MAX_WINDOW_NS
