"""Importable helpers shared across test modules."""

from __future__ import annotations

from repro.sim import SimProcess, Simulator, spawn


def run_gen(sim: Simulator, gen, name: str = "test"):
    """Drive one generator to completion; returns its value."""
    proc = SimProcess(sim, gen, name)
    sim.run()
    assert proc.finished, f"process {name} deadlocked"
    return proc.result


def run_gens(sim: Simulator, *gens):
    """Drive several generators concurrently; returns their results."""
    procs = [spawn(sim, g, f"test{i}") for i, g in enumerate(gens)]
    sim.run()
    for p in procs:
        assert p.finished, f"process {p.name} deadlocked"
    return [p.result for p in procs]
