"""Importable helpers shared across test modules."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim import SimProcess, Simulator, spawn
from repro.sim.engine import SimulationError
from repro.sim.event import Event, PRIORITY_NORMAL
from repro.sim.rng import RngRegistry
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class ReferenceSimulator:
    """The pre-optimization pure-heap engine, kept verbatim as an oracle.

    The scheduler-conformance suite runs identical programs on this and
    on :class:`repro.sim.Simulator` (both fast and plain modes) and
    asserts identical event order, tie-breaking, cancellation and
    run-window behaviour.  Do not "improve" this class: its value is
    that it stays the simple, obviously-correct implementation the
    optimized engine must match event-for-event.
    """

    def __init__(self, seed: int = 0xC0FFEE, trace: bool = False) -> None:
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self.rng = RngRegistry(seed)
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=trace, clock=lambda: self.now)

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        ev = Event(time, priority, self._seq, fn, args, kwargs)
        heapq.heappush(self._heap, (time, priority, self._seq, ev))
        return ev

    def cancel(self, event: Event) -> None:
        event.cancel()

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        heap = self._heap
        while heap:
            time, _prio, _seq, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = time
            self.events_executed += 1
            ev.fn(*ev.args, **(ev.kwargs or {}))
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None and max_events is None:
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    time, _prio, _seq, ev = pop(heap)
                    if ev.cancelled:
                        continue
                    self.now = time
                    self.events_executed += 1
                    ev.fn(*ev.args, **(ev.kwargs or {}))
                return self.now
            executed = 0
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        return sum(1 for entry in self._heap if not entry[3].cancelled)


def run_gen(sim: Simulator, gen, name: str = "test"):
    """Drive one generator to completion; returns its value."""
    proc = SimProcess(sim, gen, name)
    sim.run()
    assert proc.finished, f"process {name} deadlocked"
    return proc.result


def run_gens(sim: Simulator, *gens):
    """Drive several generators concurrently; returns their results."""
    procs = [spawn(sim, g, f"test{i}") for i, g in enumerate(gens)]
    sim.run()
    for p in procs:
        assert p.finished, f"process {p.name} deadlocked"
    return [p.result for p in procs]
